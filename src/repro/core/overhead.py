"""Kernel-primitive cost model (Table 1 and Section 6.4 calibration).

The paper measures the run-time cost of every scheduler primitive on a
25 MHz Motorola 68040 with a 5 MHz on-chip timer and reports them in
Table 1 as linear functions of the queue length ``n`` (microseconds):

======================  =================  ==================  ==========================
quantity                EDF, unsorted      RM, sorted queue    RM, sorted heap
                        queue
======================  =================  ==================  ==========================
``t_b`` (block)         1.6                1.0 + 0.36 n        0.4 + 2.8 ceil(log2(n+1))
``t_u`` (unblock)       1.2                1.4                 1.9 + 0.7 ceil(log2(n+1))
``t_s`` (select)        1.2 + 0.25 n       0.6                 0.6
======================  =================  ==================  ==========================

CSD-x additionally pays 0.55 us per queue to parse the prioritized list
of queues when selecting (Section 5.7).

We do not have the 68040, so this module *is* the substitute hardware:
the discrete-event kernel charges virtual time for each primitive using
exactly these published formulas.  Every constant is stored in integer
nanoseconds.

Section 6.4 constants
---------------------

The semaphore evaluation (Figure 11) implies additional constants that
the paper does not tabulate directly.  We calibrate them from the
numbers the text *does* give:

* A contended acquire/release pair under the standard scheme performs
  two context switches attributable to the semaphore calls (C2 and C3
  of Figure 7); the EMERALDS scheme performs one (Section 6.2).  Each
  switch pays the selection cost ``t_s``, which is where the queue-
  length slopes of Figure 11 come from (2:1 slope ratio on the DP
  queue).
* Summing the exact charge sequence our kernel produces for the
  Figure 6 scenario (syscall entries, the per-call fixed semaphore
  cost, PI steps, ``t_b``/``t_u``/``t_s``, context switches) and
  equating it with the paper's reported values -- DP queue of length
  15: standard 39.3 us, new 28.3 us (11 us / 28% saving); FP queue:
  standard 39.8 us at length 15, new flat at 29.4 us (26% saving) --
  yields, with ``CS = 10 us`` and 1 us syscall entry:

  - fixed semaphore-path cost: 1.0 us standard per acquire/release
    pair; under the EMERALDS scheme the *uncontended* fast path costs
    the same, while calls on the contended path (a locked semaphore,
    or parked/registry threads to manage) pay 5.85 us each and the
    unblock-path hint check costs 0.2 us -- the new scheme trades a
    costlier slow path for the eliminated context switch;
  - DP-task priority inheritance (deadline overwrite): 1.05 us;
  - FP-task O(1) place-holder swap: 3.675 us;
  - FP-task standard PI reposition: 0.15 + 0.2 n us per step.

These derived constants only shift curves vertically; the *shape* of
Figure 11 (slope ratio 2:1 on the DP queue, flat-vs-linear on the FP
queue) follows from the algorithms themselves.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OverheadModel", "ZERO_OVERHEAD"]


def _ceil_log2(n: int) -> int:
    """``ceil(log2(n))`` for positive ``n`` (0 for n <= 1)."""
    if n <= 1:
        return 0
    return (n - 1).bit_length()


@dataclass(frozen=True)
class OverheadModel:
    """Charges (integer nanoseconds) for every kernel primitive.

    The defaults reproduce the paper's 25 MHz MC68040 measurements.  A
    model with every field zero (:data:`ZERO_OVERHEAD`) recovers the
    idealized analysis of Section 5.2, where only schedulability
    overhead remains.

    All ``*_block``/``*_unblock``/``*_select`` methods take the length
    of the queue being manipulated.
    """

    # --- Table 1: EDF, single unsorted queue -------------------------
    edf_block_ns: int = 1_600
    edf_unblock_ns: int = 1_200
    edf_select_base_ns: int = 1_200
    edf_select_per_task_ns: int = 250

    # --- Table 1: RM, single sorted queue with ``highestp`` ----------
    rm_block_base_ns: int = 1_000
    rm_block_per_task_ns: int = 360
    rm_unblock_ns: int = 1_400
    rm_select_ns: int = 600

    # --- Table 1: RM, sorted heap of ready tasks ---------------------
    heap_block_base_ns: int = 400
    heap_block_per_level_ns: int = 2_800
    heap_unblock_base_ns: int = 1_900
    heap_unblock_per_level_ns: int = 700
    heap_select_ns: int = 600

    # --- CSD queue-list parse (Section 5.7) --------------------------
    queue_parse_ns: int = 550

    # --- Section 6.4 calibration (see module docstring) --------------
    context_switch_ns: int = 10_000
    sem_fixed_standard_ns: int = 1_000
    sem_fixed_emeralds_ns: int = 11_700
    sem_hint_check_ns: int = 200
    pi_dp_step_ns: int = 1_050
    pi_o1_step_ns: int = 3_675
    pi_std_base_ns: int = 150
    pi_std_per_task_ns: int = 200

    # --- Substrate costs (not separately reported by the paper) ------
    syscall_ns: int = 1_000
    interrupt_entry_ns: int = 2_000
    ipc_copy_per_byte_ns: int = 25
    ipc_fixed_ns: int = 3_000
    state_msg_write_ns: int = 1_500
    state_msg_read_ns: int = 1_500

    # ------------------------------------------------------------------
    # Table 1 formulas
    # ------------------------------------------------------------------
    def edf_block(self, n: int) -> int:
        """``t_b`` for the unsorted EDF queue: O(1) TCB update."""
        return self.edf_block_ns

    def edf_unblock(self, n: int) -> int:
        """``t_u`` for the unsorted EDF queue: O(1) TCB update."""
        return self.edf_unblock_ns

    def edf_select(self, n: int) -> int:
        """``t_s`` for the unsorted EDF queue: O(n) scan for the
        earliest-deadline ready task."""
        return self.edf_select_base_ns + self.edf_select_per_task_ns * n

    def rm_block(self, n: int) -> int:
        """``t_b`` for the sorted RM queue: O(n) scan to advance the
        ``highestp`` pointer."""
        return self.rm_block_base_ns + self.rm_block_per_task_ns * n

    def rm_unblock(self, n: int) -> int:
        """``t_u`` for the sorted RM queue: O(1) compare against
        ``highestp``."""
        return self.rm_unblock_ns

    def rm_select(self, n: int) -> int:
        """``t_s`` for the sorted RM queue: O(1), follow ``highestp``."""
        return self.rm_select_ns

    def heap_block(self, n: int) -> int:
        """``t_b`` for the heap variant: O(log n) sift."""
        return self.heap_block_base_ns + self.heap_block_per_level_ns * _ceil_log2(n + 1)

    def heap_unblock(self, n: int) -> int:
        """``t_u`` for the heap variant: O(log n) insert."""
        return self.heap_unblock_base_ns + self.heap_unblock_per_level_ns * _ceil_log2(n + 1)

    def heap_select(self, n: int) -> int:
        """``t_s`` for the heap variant: O(1), read the root."""
        return self.heap_select_ns

    # ------------------------------------------------------------------
    # Priority inheritance (Section 6)
    # ------------------------------------------------------------------
    def pi_standard_step(self, n: int) -> int:
        """One remove-and-reinsert PI step on a sorted queue of length n."""
        return self.pi_std_base_ns + self.pi_std_per_task_ns * n

    def pi_dp_step(self) -> int:
        """One O(1) PI step on a DP task (deadline overwrite in the
        TCB; the EDF queue is unsorted, Section 6.1)."""
        return self.pi_dp_step_ns

    def pi_o1_step(self) -> int:
        """One O(1) place-holder-swap PI step (Section 6.2)."""
        return self.pi_o1_step_ns

    # ------------------------------------------------------------------
    # Analytic per-period scheduler overhead (Section 5.1)
    # ------------------------------------------------------------------
    @staticmethod
    def per_period(t_b: int, t_u: int, t_s: int, blocking_factor: float = 1.5) -> int:
        """The paper's per-period run-time overhead model.

        Each task blocks and unblocks at least once per period, costing
        ``t_b + t_u + 2 t_s``; with half the tasks making one extra
        blocking call per period the average becomes
        ``t = 1.5 (t_b + t_u + 2 t_s)``.
        """
        return round(blocking_factor * (t_b + t_u + 2 * t_s))


ZERO_OVERHEAD = OverheadModel(
    edf_block_ns=0,
    edf_unblock_ns=0,
    edf_select_base_ns=0,
    edf_select_per_task_ns=0,
    rm_block_base_ns=0,
    rm_block_per_task_ns=0,
    rm_unblock_ns=0,
    rm_select_ns=0,
    heap_block_base_ns=0,
    heap_block_per_level_ns=0,
    heap_unblock_base_ns=0,
    heap_unblock_per_level_ns=0,
    heap_select_ns=0,
    queue_parse_ns=0,
    context_switch_ns=0,
    sem_fixed_standard_ns=0,
    sem_fixed_emeralds_ns=0,
    sem_hint_check_ns=0,
    pi_dp_step_ns=0,
    pi_o1_step_ns=0,
    pi_std_base_ns=0,
    pi_std_per_task_ns=0,
    syscall_ns=0,
    interrupt_entry_ns=0,
    ipc_copy_per_byte_ns=0,
    ipc_fixed_ns=0,
    state_msg_write_ns=0,
    state_msg_read_ns=0,
)
"""A cost model in which every kernel primitive is free.

Under this model only *schedulability* overhead remains, recovering the
idealized setting of Section 5.2 (EDF schedules anything with U <= 1).
"""
