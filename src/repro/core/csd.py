"""The Combined Static/Dynamic (CSD) scheduler (Sections 5.3-5.6).

CSD-x maintains ``x`` queues: ``x - 1`` dynamic-priority (DP) queues
scheduled internally by EDF, followed by one fixed-priority (FP) queue
scheduled by RM (or any fixed-priority assignment).  Queues are
strictly prioritized: DP1 tasks always beat DP2 tasks, which always
beat FP tasks.  A per-DP-queue counter of ready tasks lets the selector
skip empty queues at the cost of one list-parse step (0.55 us each,
Section 5.7) without scanning them.

The degenerate configurations behave as the paper says: every task on
the single FP queue is plain RM; every task on one DP queue is plain
EDF (plus the queue-parse cost).

Tasks carry their queue assignment in ``Schedulable.csd_queue``
(0-based; the FP queue is index ``x - 1``).  Assignments normally come
from :mod:`repro.core.allocation`, which reproduces the paper's
offline search.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.overhead import OverheadModel
from repro.core.queues import Schedulable, SortedQueue, UnsortedQueue
from repro.core.scheduler import Scheduler

__all__ = ["CSDScheduler"]


class CSDScheduler(Scheduler):
    """CSD-x: ``dp_queue_count`` EDF queues over one RM queue."""

    def __init__(
        self,
        model: Optional[OverheadModel] = None,
        dp_queue_count: int = 1,
        shed_overload: bool = False,
    ):
        super().__init__(model)
        if dp_queue_count < 0:
            raise ValueError("dp_queue_count must be >= 0")
        self.dp_queues: List[UnsortedQueue] = [
            UnsortedQueue(f"DP{i + 1}") for i in range(dp_queue_count)
        ]
        self.fp_queue = SortedQueue("FP")
        #: Graceful degradation: while a band overruns, releases of its
        #: lowest-criticality tasks are shed (see :meth:`admit_release`).
        self.shed_overload = shed_overload
        #: Releases refused by the shedding policy, by task name.
        self.shed_counts: Dict[str, int] = {}
        # PI bookkeeping: tasks temporarily migrated to a higher queue,
        # mapped to their home queue index.
        self._pi_home: Dict[Schedulable, int] = {}
        # Per-length charged-cost memos; see EDFScheduler.__init__.
        self._block_costs: Dict[Tuple[bool, int], int] = {}
        self._unblock_costs: Dict[Tuple[bool, int], int] = {}
        self._select_costs: Dict[Tuple[bool, int], int] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    @property
    def queue_count(self) -> int:
        """Total number of queues (the x in CSD-x)."""
        return len(self.dp_queues) + 1

    @property
    def fp_index(self) -> int:
        """Queue index of the FP queue (always the last one)."""
        return len(self.dp_queues)

    def queue_lengths(self) -> List[int]:
        return [len(q) for q in self.dp_queues] + [len(self.fp_queue)]

    def queue_index_of(self, task: Schedulable) -> int:
        # O(1) in the common case: membership is an identity check on
        # the task's queue back-pointer, and ``task.csd_queue`` tracks
        # the index through PI migrations.
        queue = task._queue
        if queue is self.fp_queue:
            return self.fp_index
        dp_queues = self.dp_queues
        index = task.csd_queue
        if index is not None and index < len(dp_queues) and queue is dp_queues[index]:
            return index
        for i, candidate in enumerate(dp_queues):
            if queue is candidate:
                return i
        raise ValueError(f"{task.name} is not scheduled by this CSD scheduler")

    def _queue_at(self, index: int):
        if index == self.fp_index:
            return self.fp_queue
        return self.dp_queues[index]

    def priority_rank(self, task: Schedulable):
        index = self.queue_index_of(task)
        if index == self.fp_index:
            return (index, 0, task.effective_key)
        deadline, key = task.edf_rank()
        return (index, deadline, key)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_task(self, task: Schedulable) -> None:
        """Place ``task`` on the queue named by ``task.csd_queue``.

        Unassigned tasks default to the FP queue, mirroring the paper's
        default of scheduling unproblematic tasks with cheap RM.
        """
        index = task.csd_queue if task.csd_queue is not None else self.fp_index
        if not 0 <= index <= self.fp_index:
            raise ValueError(
                f"{task.name}: csd_queue {index} out of range for CSD-{self.queue_count}"
            )
        task.csd_queue = index
        self._queue_at(index).add(task)

    def remove_task(self, task: Schedulable) -> None:
        index = self.queue_index_of(task)
        self._queue_at(index).remove(task)
        self._pi_home.pop(task, None)

    def tasks(self) -> List[Schedulable]:
        found: List[Schedulable] = []
        for queue in self.dp_queues:
            found.extend(queue)
        found.extend(self.fp_queue)
        return found

    def check_invariants(self) -> None:
        self.fp_queue.check_invariants()

    # ------------------------------------------------------------------
    # overload shedding (graceful degradation, beyond the paper)
    # ------------------------------------------------------------------
    def admit_release(self, task: Schedulable, now: int) -> bool:
        """Shed releases of low-criticality tasks in an overrunning band.

        A band is *overrunning* when some other task in it is ready
        with an expired deadline, or is so far behind that releases
        have queued up behind its unfinished job.  While that holds,
        releases of tasks strictly less critical than the worst
        overrunner are skipped, turning the band-isolation observations
        of ``tests/test_overload.py`` into enforced guarantees: the
        most critical tasks of the band keep their slack instead of
        queueing behind overload-inflated EDF backlogs.
        """
        if not self.shed_overload:
            return True
        queue = self._queue_at(self.queue_index_of(task))
        overrun_criticality: Optional[int] = None
        for other in queue:
            if other is task or not other.ready:
                continue
            late = other.abs_deadline is not None and other.abs_deadline < now
            backlog = getattr(other, "pending_releases", 0) > 0
            if late or backlog:
                criticality = getattr(other, "criticality", 0)
                if overrun_criticality is None or criticality > overrun_criticality:
                    overrun_criticality = criticality
        if overrun_criticality is None:
            return True
        if getattr(task, "criticality", 0) >= overrun_criticality:
            return True
        self.shed_counts[task.name] = self.shed_counts.get(task.name, 0) + 1
        return False

    # ------------------------------------------------------------------
    # scheduling primitives (cost cases of Section 5.4 / Table 3)
    # ------------------------------------------------------------------
    def _block(self, task: Schedulable) -> int:
        index = self.queue_index_of(task)
        queue = self._queue_at(index)
        queue.block(task)
        if index == self.fp_index:
            # FP task blocks: t_b = O(n - r), advance highestp.
            key = (True, self.fp_queue._size)
        else:
            # DP task blocks: t_b = O(1), a TCB flag update.
            key = (False, len(queue._tasks))
        cost = self._block_costs.get(key)
        if cost is None:
            fn = self.model.rm_block if key[0] else self.model.edf_block
            cost = self._block_costs[key] = fn(key[1])
        return cost

    def _unblock(self, task: Schedulable) -> int:
        index = self.queue_index_of(task)
        queue = self._queue_at(index)
        queue.unblock(task)
        if index == self.fp_index:
            key = (True, self.fp_queue._size)
        else:
            key = (False, len(queue._tasks))
        cost = self._unblock_costs.get(key)
        if cost is None:
            fn = self.model.rm_unblock if key[0] else self.model.edf_unblock
            cost = self._unblock_costs[key] = fn(key[1])
        return cost

    def _select(self) -> Tuple[Optional[Schedulable], int]:
        """Walk the prioritized queue list; parse the first live queue.

        Charges the flat ``x * 0.55 us`` queue-list parse of Section 5.7
        plus the selection cost of the queue actually parsed: an O(len)
        EDF scan for a DP queue with ready tasks, or the O(1)
        ``highestp`` dereference for the FP queue.
        """
        dp_queues = self.dp_queues
        parse = (len(dp_queues) + 1) * self.model.queue_parse_ns
        for queue in dp_queues:
            if queue.ready_count > 0:
                task = queue.select()
                key = (False, len(queue._tasks))
                cost = self._select_costs.get(key)
                if cost is None:
                    cost = self._select_costs[key] = self.model.edf_select(key[1])
                return task, parse + cost
        fp_queue = self.fp_queue
        task = fp_queue.select()
        key = (True, fp_queue._size)
        cost = self._select_costs.get(key)
        if cost is None:
            cost = self._select_costs[key] = self.model.rm_select(key[1])
        return task, parse + cost

    # ------------------------------------------------------------------
    # priority inheritance
    # ------------------------------------------------------------------
    def _raise_priority(self, task: Schedulable, donor: Schedulable) -> int:
        """Give ``task`` the donor's priority, migrating across queues
        when the donor lives on a higher-priority queue.

        Within a DP queue this is the O(1) deadline overwrite; within
        the FP queue it is the standard O(n) remove-and-reinsert (the
        O(1) place-holder swap is offered separately via
        :meth:`swap_with_placeholder`).  Cross-queue inheritance
        (not detailed in the paper; needed for full nested-locking
        generality) temporarily moves the holder to the donor's queue.
        """
        holder_index = self.queue_index_of(task)
        donor_index = self.queue_index_of(donor)
        donor_deadline, donor_key = donor.edf_rank()
        if donor_deadline == float("inf"):
            inherited = None
            donor_key = None
        else:
            inherited = int(donor_deadline)
        if donor_index > holder_index:
            # Donor is on a lower-priority queue; within the same queue
            # semantics below still apply, across queues nothing to do.
            if holder_index != donor_index:
                return self.model.pi_dp_step()
        if donor_index == holder_index:
            if holder_index == self.fp_index:
                task.effective_key = donor.effective_key
                self.fp_queue.reposition(task)
                return self.model.pi_standard_step(len(self.fp_queue))
            task.pi_deadline = inherited
            task.pi_key = donor_key
            return self.model.pi_dp_step()
        # donor_index < holder_index: migrate the holder up.
        self._pi_home.setdefault(task, holder_index)
        self._queue_at(holder_index).remove(task)
        task.csd_queue = donor_index
        if donor_index == self.fp_index:
            task.effective_key = donor.effective_key
            self.fp_queue.add(task)
        else:
            task.pi_deadline = inherited
            task.pi_key = donor_key
            self.dp_queues[donor_index].add(task)
        return self.model.pi_standard_step(
            max(len(self._queue_at(donor_index)), len(self._queue_at(holder_index)))
        )

    def _restore_priority(self, task: Schedulable) -> int:
        current = self.queue_index_of(task)
        home = self._pi_home.pop(task, current)
        if home != current:
            self._queue_at(current).remove(task)
            task.csd_queue = home
            task.pi_deadline = None
            task.pi_key = None
            task.effective_key = task.base_key
            self._queue_at(home).add(task)
            return self.model.pi_standard_step(
                max(len(self._queue_at(home)), len(self._queue_at(current)))
            )
        if current == self.fp_index:
            task.effective_key = task.base_key
            self.fp_queue.reposition(task)
            return self.model.pi_standard_step(len(self.fp_queue))
        task.pi_deadline = None
        task.pi_key = None
        return self.model.pi_dp_step()

    def _swap_with_placeholder(
        self, holder: Schedulable, placeholder: Schedulable
    ) -> Optional[int]:
        if holder not in self.fp_queue or placeholder not in self.fp_queue:
            return None
        self.fp_queue.swap_positions(holder, placeholder)
        return self.model.pi_o1_step()
