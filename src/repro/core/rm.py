"""Rate-monotonic / fixed-priority scheduler (Section 5.1).

Two implementations, matching Table 1:

* :class:`RMScheduler` -- EMERALDS' own: one sorted queue holding *all*
  tasks (blocked and ready) with a ``highestp`` pointer.  Selection and
  unblocking are O(1); blocking is O(n) worst case.  Keeping blocked
  tasks in the queue enables the Section 6 semaphore optimizations.
* :class:`RMHeapScheduler` -- the conventional ready-heap variant the
  paper measures for comparison; O(log n) block/unblock but larger
  constants, so it only wins for very large n (58 on their hardware).

Any fixed-priority assignment works (the paper notes deadline-monotonic
as an alternative); the priority is whatever ``task.base_key`` encodes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.overhead import OverheadModel
from repro.core.queues import ReadyHeap, Schedulable, SortedQueue
from repro.core.scheduler import Scheduler

__all__ = ["RMScheduler", "RMHeapScheduler"]


class RMScheduler(Scheduler):
    """Fixed-priority scheduling over one sorted all-task queue."""

    def __init__(self, model: Optional[OverheadModel] = None):
        super().__init__(model)
        self.queue = SortedQueue("FP")
        # Per-length cost memos; see EDFScheduler.__init__.
        self._block_costs: dict = {}
        self._unblock_costs: dict = {}
        self._select_costs: dict = {}

    def add_task(self, task: Schedulable) -> None:
        self.queue.add(task)

    def remove_task(self, task: Schedulable) -> None:
        self.queue.remove(task)

    def tasks(self) -> List[Schedulable]:
        return list(self.queue)

    def queue_lengths(self) -> List[int]:
        return [len(self.queue)]

    def queue_index_of(self, task: Schedulable) -> int:
        if task not in self.queue:
            raise ValueError(f"{task.name} is not scheduled by this RM scheduler")
        return 0

    def check_invariants(self) -> None:
        self.queue.check_invariants()

    def _block(self, task: Schedulable) -> int:
        queue = self.queue
        queue.block(task)
        n = queue._size
        cost = self._block_costs.get(n)
        if cost is None:
            cost = self._block_costs[n] = self.model.rm_block(n)
        return cost

    def _unblock(self, task: Schedulable) -> int:
        queue = self.queue
        queue.unblock(task)
        n = queue._size
        cost = self._unblock_costs.get(n)
        if cost is None:
            cost = self._unblock_costs[n] = self.model.rm_unblock(n)
        return cost

    def _select(self) -> Tuple[Optional[Schedulable], int]:
        queue = self.queue
        task = queue.select()
        n = queue._size
        cost = self._select_costs.get(n)
        if cost is None:
            cost = self._select_costs[n] = self.model.rm_select(n)
        return task, cost

    def _raise_priority(self, task: Schedulable, donor: Schedulable) -> int:
        task.effective_key = donor.effective_key
        self.queue.reposition(task)
        return self.model.pi_standard_step(len(self.queue))

    def _restore_priority(self, task: Schedulable) -> int:
        task.effective_key = task.base_key
        self.queue.reposition(task)
        return self.model.pi_standard_step(len(self.queue))

    def _swap_with_placeholder(
        self, holder: Schedulable, placeholder: Schedulable
    ) -> Optional[int]:
        if holder not in self.queue or placeholder not in self.queue:
            return None
        self.queue.swap_positions(holder, placeholder)
        return self.model.pi_o1_step()


class RMHeapScheduler(Scheduler):
    """Fixed-priority scheduling over a binary heap of ready tasks.

    The O(1) place-holder PI trick is *not* available here: the heap
    holds only ready tasks, so there is nowhere to park a place-holder
    (the paper makes exactly this point at the end of Section 6.2).
    """

    def __init__(self, model: Optional[OverheadModel] = None):
        super().__init__(model)
        self.queue = ReadyHeap("HEAP")

    def add_task(self, task: Schedulable) -> None:
        self.queue.add(task)

    def remove_task(self, task: Schedulable) -> None:
        self.queue.remove(task)

    def tasks(self) -> List[Schedulable]:
        return list(self.queue)

    def queue_lengths(self) -> List[int]:
        return [len(self.queue)]

    def queue_index_of(self, task: Schedulable) -> int:
        if task not in self.queue:
            raise ValueError(f"{task.name} is not scheduled by this scheduler")
        return 0

    def _block(self, task: Schedulable) -> int:
        self.queue.block(task)
        return self.model.heap_block(len(self.queue))

    def _unblock(self, task: Schedulable) -> int:
        self.queue.unblock(task)
        return self.model.heap_unblock(len(self.queue))

    def _select(self) -> Tuple[Optional[Schedulable], int]:
        task = self.queue.select()
        return task, self.model.heap_select(len(self.queue))

    def _raise_priority(self, task: Schedulable, donor: Schedulable) -> int:
        # Re-keying a heap entry: invalidate + reinsert when ready.
        task.effective_key = donor.effective_key
        if task.ready:
            self.queue.block(task)
            self.queue.unblock(task)
        return self.model.heap_block(len(self.queue)) + self.model.heap_unblock(
            len(self.queue)
        )

    def _restore_priority(self, task: Schedulable) -> int:
        task.effective_key = task.base_key
        if task.ready:
            self.queue.block(task)
            self.queue.unblock(task)
        return self.model.heap_block(len(self.queue)) + self.model.heap_unblock(
            len(self.queue)
        )
