"""Integer time units for the EMERALDS reproduction.

All virtual time in this package is kept as integer **nanoseconds**.
The paper reports kernel primitive costs in microseconds with 0.05 us
resolution (measured with a 5 MHz on-chip timer, i.e. 200 ns ticks);
integer nanoseconds represent every constant in Table 1 exactly and keep
the discrete-event simulation fully deterministic.

Helpers convert the human-friendly units used throughout the paper
(task periods in milliseconds, overheads in microseconds) into
nanoseconds and back.
"""

from __future__ import annotations

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds (rounded to nearest)."""
    return round(value * NS_PER_US)


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds (rounded to nearest)."""
    return round(value * NS_PER_MS)


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds (rounded to nearest)."""
    return round(value * NS_PER_S)


def to_us(value_ns: int) -> float:
    """Convert nanoseconds to (float) microseconds."""
    return value_ns / NS_PER_US


def to_ms(value_ns: int) -> float:
    """Convert nanoseconds to (float) milliseconds."""
    return value_ns / NS_PER_MS


def to_s(value_ns: int) -> float:
    """Convert nanoseconds to (float) seconds."""
    return value_ns / NS_PER_S
