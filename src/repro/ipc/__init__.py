"""Intra-node IPC: mailboxes, shared memory, state messages."""

from repro.ipc.mailbox import Mailbox, MailboxError
from repro.ipc.shared_memory import SharedMemory
from repro.ipc.state_message import (
    ReadToken,
    StateChannel,
    StateMessageError,
    TornRead,
    required_slots,
)

__all__ = [
    "Mailbox",
    "MailboxError",
    "ReadToken",
    "SharedMemory",
    "StateChannel",
    "StateMessageError",
    "TornRead",
    "required_slots",
]
