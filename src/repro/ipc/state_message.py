"""State messages: lock-free single-writer many-reader channels.

EMERALDS' intra-node communication optimization (Section 7 of the
paper; the section's evaluation is truncated in our copy, so the
mechanism is reconstructed from the design described in the journal
version of EMERALDS).  Periodic sensor-style data has *state*
semantics: readers only ever want the latest value, so a kernel
mailbox -- with its trap, queueing, and copying -- is overkill.  A
state message is a small circular buffer of N slots in shared memory:

* the single writer writes the next slot, then publishes it by
  updating the latest-slot index (one store, atomic on any CPU);
* readers fetch the index, then copy that slot without any locking.

A reader can be preempted mid-copy.  The slot it is copying is only
overwritten once the writer has cycled through all other slots, so
torn reads are impossible when::

    N >= ceil(max_read_time / writer_period) + 2

(the +2 covers the slot being written concurrently and the publish
fetched just before a write).  :func:`required_slots` computes this
bound; the simulation detects actual torn reads, which is how the
property is validated empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

__all__ = [
    "StateChannel",
    "ReadToken",
    "TornRead",
    "required_slots",
    "StateMessageError",
]


class StateMessageError(Exception):
    """Misuse of a state-message channel (e.g. a second writer)."""


def required_slots(writer_period_ns: int, max_read_ns: int) -> int:
    """Minimum slot count guaranteeing tear-free reads.

    Args:
        writer_period_ns: Minimum interval between writes.
        max_read_ns: Worst-case duration of a reader's copy loop
            (including any preemption it can suffer).

    Returns:
        ``ceil(max_read / period) + 2``.
    """
    if writer_period_ns <= 0:
        raise ValueError("writer period must be positive")
    if max_read_ns < 0:
        raise ValueError("read time must be non-negative")
    return -(-max_read_ns // writer_period_ns) + 2


@dataclass(frozen=True)
class ReadToken:
    """Snapshot taken at the start of a read (index + version)."""

    index: int
    version: int


class StateChannel:
    """An N-slot single-writer multi-reader state message."""

    def __init__(self, name: str, slots: int = 4):
        if slots < 2:
            raise ValueError("state channels need at least 2 slots")
        self.name = name
        self.slots = slots
        #: Per-slot (version, value); version counts writes to the slot.
        self._buffer: List[List[Any]] = [[0, None] for _ in range(slots)]
        self._latest = 0
        self._write_count = 0
        self.writer_name: Optional[str] = None
        # statistics
        self.writes = 0
        self.reads = 0
        self.torn_reads = 0

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def write(self, value: Any, writer_name: Optional[str] = None) -> int:
        """Publish a new value.  Returns the slot index used.

        Enforces the single-writer rule when ``writer_name`` is given.
        """
        if writer_name is not None:
            if self.writer_name is None:
                self.writer_name = writer_name
            elif self.writer_name != writer_name:
                raise StateMessageError(
                    f"channel {self.name}: second writer {writer_name} "
                    f"(writer is {self.writer_name})"
                )
        index = (self._latest + 1) % self.slots
        slot = self._buffer[index]
        slot[0] += 1
        slot[1] = value
        self._latest = index
        self._write_count += 1
        self.writes += 1
        return index

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def read(self) -> Any:
        """Instantaneous (un-preemptible) read of the latest value."""
        self.reads += 1
        return self._buffer[self._latest][1]

    def begin_read(self) -> ReadToken:
        """Start a timed read: capture the published index + version."""
        index = self._latest
        return ReadToken(index=index, version=self._buffer[index][0])

    def end_read(self, token: ReadToken) -> Any:
        """Finish a timed read.

        Raises :class:`TornRead` when the slot was overwritten during
        the copy (the writer lapped the reader), which the caller
        handles by retrying.
        """
        self.reads += 1
        slot = self._buffer[token.index]
        if slot[0] != token.version:
            self.torn_reads += 1
            raise TornRead(
                f"channel {self.name}: slot {token.index} overwritten during read"
            )
        return slot[1]

    @property
    def latest_index(self) -> int:
        return self._latest

    def __repr__(self) -> str:
        return (
            f"<StateChannel {self.name}: {self.slots} slots, "
            f"{self.writes} writes, {self.torn_reads} torn reads>"
        )


class TornRead(StateMessageError):
    """A timed read observed a slot overwritten mid-copy."""
