"""Mailbox message passing (Section 3, Figure 1).

EMERALDS' IPC is "based on message-passing, mailboxes, and
shared-memory".  A mailbox is a bounded kernel queue of messages:
``send`` copies the message into the kernel (blocking when the mailbox
is full), ``recv`` copies it out (blocking when empty).  Both copies
are charged per byte plus a fixed kernel-entry cost, which is exactly
why the state-message channels of :mod:`repro.ipc.state_message` beat
mailboxes for periodic sensor-style data: they trade the trap and the
queue management for a lock-free shared-memory slot protocol.

When the sender or receiver names a buffer region, the kernel validates
it against the process's memory map (readable for sends, writable for
receives), reproducing the protection checks of the microkernel path.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, List, Optional, Tuple

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["Mailbox", "MailboxError"]


class MailboxError(Exception):
    """Semantic misuse of a mailbox."""


class Mailbox:
    """A bounded queue of messages."""

    def __init__(self, name: str, capacity: int = 8, max_message_size: int = 64):
        if capacity < 1:
            raise ValueError("mailbox capacity must be >= 1")
        if max_message_size < 1:
            raise ValueError("max message size must be >= 1")
        self.name = name
        self.capacity = capacity
        self.max_message_size = max_message_size
        self._messages: Deque[Tuple[object, int]] = deque()
        #: Threads blocked in recv (served in priority order).
        self.receivers: List["Thread"] = []
        #: Threads blocked in send because the mailbox was full.
        self.senders: List["Thread"] = []
        # statistics
        self.sends = 0
        self.receives = 0
        self.blocked_sends = 0
        self.blocked_receives = 0

    def __len__(self) -> int:
        return len(self._messages)

    @property
    def full(self) -> bool:
        return len(self._messages) >= self.capacity

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def send(
        self,
        kernel: "Kernel",
        thread: "Thread",
        payload: object,
        size: int,
        buffer: Optional[str] = None,
    ) -> bool:
        """Copy a message in.  Returns False if the sender blocked
        (the send op re-executes when the mailbox drains)."""
        if size > self.max_message_size:
            raise MailboxError(
                f"mailbox {self.name}: message of {size} bytes exceeds "
                f"max {self.max_message_size}"
            )
        if buffer is not None and thread.process is not None:
            thread.process.memory.check_readable(buffer, size)
        if self.receivers:
            # Direct hand-off: copy straight to the waiting receiver.
            self.sends += 1
            kernel.charge(self._copy_cost(kernel, size), "ipc")
            receiver = min(self.receivers, key=kernel.priority_rank)
            self.receivers.remove(receiver)
            receiver.last_received = payload
            kernel.deliver_unblock(receiver)
            return True
        if self.full:
            self.blocked_sends += 1
            self.senders.append(thread)
            kernel.block_thread(thread, f"mbox-send:{self.name}")
            return False
        self.sends += 1
        kernel.charge(self._copy_cost(kernel, size), "ipc")
        self._messages.append((payload, size))
        return True

    def recv(
        self,
        kernel: "Kernel",
        thread: "Thread",
        buffer: Optional[str] = None,
        hint: Optional[str] = None,
    ) -> bool:
        """Copy a message out into ``thread.last_received``.

        Returns False when the receiver blocked; the message will be
        delivered (and the thread woken) by a future send.  ``hint`` is
        the parser-inserted semaphore identifier (recv is a blocking
        call, so it participates in the Section 6.2 scheme).
        """
        if buffer is not None and thread.process is not None:
            thread.process.memory.check_writable(buffer, self.max_message_size)
        if self._messages:
            payload, size = self._messages.popleft()
            self.receives += 1
            kernel.charge(self._copy_cost(kernel, size), "ipc")
            thread.last_received = payload
            self._wake_sender(kernel)
            return True
        self.blocked_receives += 1
        thread.pending_hint = hint
        self.receivers.append(thread)
        kernel.block_thread(thread, f"mbox-recv:{self.name}")
        return False

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _wake_sender(self, kernel: "Kernel") -> None:
        """A slot freed up: let the best blocked sender retry."""
        if not self.senders:
            return
        best = min(self.senders, key=kernel.priority_rank)
        self.senders.remove(best)
        kernel.unblock_thread(best)

    def _copy_cost(self, kernel: "Kernel", size: int) -> int:
        return kernel.model.ipc_fixed_ns + size * kernel.model.ipc_copy_per_byte_ns

    def __repr__(self) -> str:
        return (
            f"<Mailbox {self.name}: {len(self._messages)}/{self.capacity} "
            f"messages, {len(self.receivers)} recv waiting>"
        )
