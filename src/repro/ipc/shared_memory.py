"""Shared-memory objects mappable into multiple processes (Section 3).

A shared-memory object owns a byte buffer at a fixed physical address;
processes map it into their memory maps (same physical base -- the
paper's targets have no MMU translation) with per-process access
rights.  The state-message channels of
:mod:`repro.ipc.state_message` live in such objects: the writer maps
the region writable, readers map it read-only.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:
    from repro.kernel.memory import Region
    from repro.kernel.process import AddressSpaceAllocator, Process

__all__ = ["SharedMemory"]


class SharedMemory:
    """A named region of physical memory shareable across processes."""

    def __init__(self, name: str, size: int, allocator: "AddressSpaceAllocator"):
        if size <= 0:
            raise ValueError("shared memory size must be positive")
        self.name = name
        self.size = size
        self.base = allocator.allocate(size)
        self.data = bytearray(size)
        #: Processes that have mapped this object, with their rights.
        self.mappings: Dict[str, "Region"] = {}

    def map_into(
        self, process: "Process", writable: bool = False, readable: bool = True
    ) -> "Region":
        """Map the object into ``process`` at its physical base."""
        from repro.kernel.memory import Region

        if process.name in self.mappings:
            raise ValueError(
                f"shared memory {self.name} already mapped in {process.name}"
            )
        region = Region(
            name=f"shm:{self.name}",
            base=self.base,
            size=self.size,
            readable=readable,
            writable=writable,
        )
        process.memory.map(region)
        self.mappings[process.name] = region
        return region

    def unmap_from(self, process: "Process") -> None:
        """Remove the mapping from ``process``."""
        region = self.mappings.pop(process.name, None)
        if region is None:
            raise KeyError(f"shared memory {self.name} not mapped in {process.name}")
        process.memory.unmap(region.name)

    def write(self, process: "Process", offset: int, payload: bytes) -> None:
        """Store bytes, enforcing the process's mapping rights."""
        region = self._region_for(process)
        if not region.writable:
            from repro.kernel.memory import ProtectionFault

            raise ProtectionFault(
                f"{process.name} has a read-only mapping of {self.name}"
            )
        if offset < 0 or offset + len(payload) > self.size:
            raise ValueError("write outside shared memory object")
        self.data[offset : offset + len(payload)] = payload

    def read(self, process: "Process", offset: int, length: int) -> bytes:
        """Load bytes, enforcing the process's mapping rights."""
        region = self._region_for(process)
        if not region.readable:
            from repro.kernel.memory import ProtectionFault

            raise ProtectionFault(
                f"{process.name} cannot read its mapping of {self.name}"
            )
        if offset < 0 or offset + length > self.size:
            raise ValueError("read outside shared memory object")
        return bytes(self.data[offset : offset + length])

    def _region_for(self, process: "Process") -> "Region":
        region = self.mappings.get(process.name)
        if region is None:
            from repro.kernel.memory import ProtectionFault

            raise ProtectionFault(
                f"{process.name} has not mapped shared memory {self.name}"
            )
        return region

    def __repr__(self) -> str:
        return (
            f"<SharedMemory {self.name}: {self.size} bytes @ {self.base:#x}, "
            f"mapped by {sorted(self.mappings)}>"
        )
