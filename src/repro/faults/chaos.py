"""Chaos harness: a reference workload run under seeded fault storms.

Builds a four-task control workload (a critical control loop, a sensor
task, a logger, and a bulk background task), arms a generated
:class:`~repro.faults.plan.FaultPlan` against it, and reports how the
kernel's overload protection held up: deadline-miss ratio, on-time
service ratio, aborted jobs, and post-burst recovery time.  The
:mod:`benchmarks.bench_faults` sweep and the ``python -m
repro.reproduce faults`` subcommand are both thin wrappers around
:func:`run_chaos`.

Everything is a pure function of ``(seed, duration, rates,
defenses)``: :attr:`ChaosResult.trace_signature` is asserted stable by
the determinism tests.

Both harnesses are split into a *prefix* (build the configuration and
simulate the fault-free warm-up to a split point) and a *continuation*
(arm the faults there and run to the horizon), so sweep points sharing
a warm-up can restore it from one checkpoint (see
:func:`repro.perf.sweeps.prefix_map`).  The activation point
``faults_from`` is part of the configuration: a cold run with
``faults_from=t`` performs build -> run_until(t) -> arm -> run, which
is operation-for-operation what a restored continuation performs --
byte-identical signatures by construction.  ``faults_from=0`` (the
default everywhere) arms faults before the first event, exactly the
historical behavior.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.metrics import miss_ratio, recovery_time_ns
from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.kernel.kernel import Kernel
from repro.kernel.program import Call, Compute, Program
from repro.timeunits import ms

__all__ = [
    "ChaosResult",
    "NetChaosResult",
    "NetChaosState",
    "build_chaos_kernel",
    "chaos_prefix",
    "chaos_continue",
    "run_chaos",
    "net_chaos_prefix",
    "net_chaos_continue",
    "run_net_chaos",
    "WORKLOAD",
]

#: The reference workload: (name, period ns, wcet ns, criticality).
#: U = 0.2 + 0.2 + 0.2 + 0.2 = 0.8 -- comfortably feasible under EDF,
#: so every miss in a chaos run is caused by the injected faults.
WORKLOAD: Tuple[Tuple[str, int, int, int], ...] = (
    ("ctrl", ms(5), ms(1), 2),
    ("sense", ms(10), ms(2), 1),
    ("log", ms(20), ms(4), 0),
    ("bulk", ms(40), ms(8), 0),
)

#: Budget headroom over the declared WCET (enforcement threshold).
BUDGET_FACTOR = 1.5


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one chaos run."""

    seed: int
    duration_ns: int
    defenses: bool
    faults_planned: int
    faults_injected: Dict[str, int]
    miss_ratio: float
    #: Per-thread on-time completions / expected releases.  Unlike the
    #: miss ratio this punishes shed and backed-off releases too: work
    #: that never became a job still counts against service.
    service_ratio: Dict[str, float]
    jobs_aborted: int
    threads_dead: Tuple[str, ...]
    recovery_ns: int
    #: Stable fingerprint of the full trace (events + job records);
    #: equal runs are byte-identical, across processes too (sha256,
    #: not ``hash()``, which string-salts per process).
    trace_signature: str = field(repr=False, default="")


def build_chaos_kernel(
    defenses: bool = True, obs: Optional[str] = None
) -> Kernel:
    """The reference workload on an EDF kernel, defended or bare.

    With ``defenses`` each task gets a per-job budget of
    ``BUDGET_FACTOR * wcet`` (action ``suspend_job``) and a bounded
    restart policy (3 restarts, one-period initial back-off).  ``obs``
    attaches an observability collector in the named mode (reachable
    as ``kernel.obs`` afterward).
    """
    kernel = Kernel(scheduler=EDFScheduler(ZERO_OVERHEAD))
    if obs is not None:
        from repro.obs.collector import ObsCollector

        ObsCollector(mode=obs).attach(kernel)
    for name, period, wcet, criticality in WORKLOAD:
        kernel.create_thread(
            name,
            Program([Compute(wcet)]),
            period=period,
            deadline=period,
            criticality=criticality,
        )
        if defenses:
            kernel.set_budget(
                name, round(BUDGET_FACTOR * wcet), action="suspend_job"
            )
            kernel.set_restart_policy(name, max_restarts=3, backoff_ns=period)
    return kernel


def chaos_prefix(
    defenses: bool = True, t_split: int = 0, obs: Optional[str] = None
) -> Kernel:
    """Build the chaos kernel and simulate its fault-free warm-up.

    Returns the kernel paused exactly at ``t_split`` -- the shared
    prefix every sweep point with the same ``(defenses, obs,
    t_split)`` restores from.  ``t_split=0`` skips the warm-up.
    """
    if t_split < 0:
        raise ValueError(f"t_split must be non-negative (got {t_split})")
    kernel = build_chaos_kernel(defenses, obs=obs)
    if t_split:
        kernel.run_until(t_split)
    return kernel


def chaos_continue(
    kernel: Kernel,
    seed: int,
    duration_ns: int = ms(1000),
    *,
    wcet_overrun_rate: float = 0.0,
    crash_rate: float = 0.0,
    clock_jitter_rate: float = 0.0,
    defenses: bool = True,
    burst_end_ns: Optional[int] = None,
    plan: Optional[FaultPlan] = None,
    faults_from: int = 0,
    defense_override: Optional[Callable[[Kernel], None]] = None,
) -> ChaosResult:
    """Finish a chaos run from a prefix kernel paused at ``faults_from``.

    Arms the generated (or given) plan's faults strictly after the
    split, applies an optional ``defense_override(kernel)`` -- the
    ablation hook: re-tune budgets/restart policies at the split
    instant -- and runs to ``duration_ns``.  ``defenses`` only labels
    the result; the kernel's actual defenses were fixed by the prefix
    (modulo the override).

    The kernel must sit exactly at ``faults_from``: the continuation's
    operation sequence is then identical whether ``kernel`` came from
    a cold :func:`chaos_prefix` call, a fork, or a deepcopy snapshot.
    """
    if kernel.now != faults_from:
        raise ValueError(
            f"continuation must resume exactly at the split point "
            f"(kernel at {kernel.now}, faults_from {faults_from})"
        )
    if defense_override is not None:
        defense_override(kernel)
    if plan is None:
        plan = FaultPlan.generate(
            seed,
            duration_ns,
            threads=[w[0] for w in WORKLOAD],
            wcet_overrun_rate=wcet_overrun_rate,
            crash_rate=crash_rate,
            clock_jitter_rate=clock_jitter_rate,
        )
    plan = plan.after(faults_from)
    injector = FaultInjector(kernel, plan).install()
    trace = kernel.run_until(duration_ns)
    if burst_end_ns is None:
        burst_end_ns = max((f.time for f in plan), default=0)

    service: Dict[str, float] = {}
    for name, period, _wcet, _crit in WORKLOAD:
        expected = duration_ns // period
        on_time = sum(
            1
            for j in trace.jobs_of(name)
            if j.completion is not None
            and (j.deadline is None or j.completion <= j.deadline)
        )
        service[name] = on_time / expected if expected else 0.0

    signature = trace.signature()
    return ChaosResult(
        seed=seed,
        duration_ns=duration_ns,
        defenses=defenses,
        faults_planned=len(plan),
        faults_injected=dict(injector.injected),
        miss_ratio=miss_ratio(trace, kernel.now),
        service_ratio=service,
        jobs_aborted=sum(t.jobs_aborted for t in kernel.threads.values()),
        threads_dead=tuple(
            sorted(t.name for t in kernel.threads.values() if t.dead)
        ),
        recovery_ns=recovery_time_ns(trace, kernel.now, burst_end_ns),
        trace_signature=signature,
    )


def run_chaos(
    seed: int,
    duration_ns: int = ms(1000),
    *,
    wcet_overrun_rate: float = 0.0,
    crash_rate: float = 0.0,
    clock_jitter_rate: float = 0.0,
    defenses: bool = True,
    burst_end_ns: Optional[int] = None,
    plan: Optional[FaultPlan] = None,
    faults_from: int = 0,
    defense_override: Optional[Callable[[Kernel], None]] = None,
    obs: Optional[str] = None,
) -> ChaosResult:
    """One seeded chaos run; see the module docstring.

    ``plan`` overrides the generated plan (rates are then ignored).
    ``burst_end_ns`` marks where the fault burst nominally stops for
    the recovery-time metric; it defaults to the last planned fault.
    ``faults_from`` is the fault-activation point: the run warms up
    fault-free to it, then arms the plan's later faults -- the cold
    reference for prefix-snapshot sweeps (0 = arm at t = 0, the
    historical behavior).
    """
    kernel = chaos_prefix(defenses, t_split=faults_from, obs=obs)
    return chaos_continue(
        kernel,
        seed,
        duration_ns,
        wcet_overrun_rate=wcet_overrun_rate,
        crash_rate=crash_rate,
        clock_jitter_rate=clock_jitter_rate,
        defenses=defenses,
        burst_end_ns=burst_end_ns,
        plan=plan,
        faults_from=faults_from,
        defense_override=defense_override,
    )


# ----------------------------------------------------------------------
# network chaos: the dependable-fieldbus harness
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class NetChaosResult:
    """Outcome of one network chaos run (see :func:`run_net_chaos`)."""

    seed: int
    duration_ns: int
    nodes: int
    drop_p: float
    corrupt_p: float
    #: Retransmission bound in force (0 = retries disabled).
    max_retransmits: int
    #: Updates published by the writer (excludes rejoin re-broadcasts).
    published: int
    #: Worst replica's applied-updates / broadcast-sequences ratio.
    delivery_ratio: float
    per_node_updates: Dict[str, int]
    frames_retransmitted: int
    retransmits_exhausted: int
    error_frames: int
    bus_off_events: int
    frames_delivered: int
    #: Total wire wait (queue -> transmission start) across deliveries;
    #: grows with retransmission traffic -- the latency cost of retries.
    arbitration_wait_ns: int
    seq_gaps: int
    duplicates: int
    stale_episodes: int
    resyncs: int
    rebroadcasts: int
    worst_staleness_ns: int
    worst_latency_ns: int
    membership_changes: int
    #: ``(time, observer, peer, "down"/"up")`` in detection order.
    membership_events: Tuple = ()
    #: sha256 over replica stats, bus counters, error-state transition
    #: logs, and membership events -- the determinism fingerprint.
    signature: str = field(repr=False, default="")


@dataclass
class NetChaosState:
    """A paused network-chaos configuration (the shared prefix).

    Everything :func:`net_chaos_continue` needs to finish the run:
    the cluster (paused at the split point), the replicated channel,
    the optional heartbeat monitor, and the horizon the prefix was
    built for.  Fork- and deepcopy-snapshot safe: the cluster runs a
    serial synchronization mode (no worker pool processes).
    """

    cluster: object
    channel: object
    monitor: Optional[object]
    duration_ns: int


def net_chaos_prefix(
    duration_ns: int = ms(1000),
    *,
    nodes: int = 4,
    dependability: bool = True,
    max_retransmits: int = 8,
    publish_period: int = ms(10),
    heartbeat_period: int = ms(50),
    freshness_ns: Optional[int] = None,
    stale_policy: str = "hold",
    silence_node: Optional[str] = None,
    silence_at: Optional[int] = None,
    rejoin_backoff_ns: Optional[int] = None,
    t_split: int = 0,
) -> NetChaosState:
    """Build the net-chaos cluster and run its fault-free warm-up.

    Every argument shapes the prefix (the writer's publish cutoff
    depends on ``duration_ns``, the silence event is scheduled at
    build time), so all of them belong in a snapshot cache key.  The
    returned state sits exactly at ``t_split``.
    """
    from repro.net.cluster import Cluster
    from repro.net.global_state import GlobalStateChannel
    from repro.net.membership import HeartbeatMonitor

    if nodes < 2:
        raise ValueError("network chaos needs at least two nodes")
    if t_split < 0:
        raise ValueError(f"t_split must be non-negative (got {t_split})")

    cluster = Cluster()
    names = [f"n{i}" for i in range(nodes)]
    for name in names:
        cluster.add_node(name, Kernel(EDFScheduler(ZERO_OVERHEAD)))
    if dependability:
        cluster.enable_dependability(max_retransmits)

    if freshness_ns is None:
        # Default bound: three publish periods of silence is stale
        # (one in flight + one driver poll + headroom).
        freshness_ns = 3 * publish_period
    channel = GlobalStateChannel(
        cluster,
        "chaos",
        can_id=0x10,
        writer_node=names[0],
        driver_period=publish_period,
        freshness_ns=freshness_ns,
        stale_policy=stale_policy,
    )

    monitor = None
    if dependability:
        monitor = HeartbeatMonitor(cluster, period=heartbeat_period)
        channel.attach_membership(monitor)

    # The writer stops publishing before the end so in-flight frames
    # (including retransmissions) drain and every replica settles.
    cutoff = max(0, duration_ns - 4 * publish_period)
    writer_kernel = cluster.nodes[names[0]]

    def pub(kern, thread) -> None:
        if kern.now <= cutoff:
            channel.publish(kern, thread, ("v", kern.now))

    writer_kernel.create_thread(
        "gs-pub",
        Program([Call(pub, label="gs-pub")]),
        period=publish_period,
        deadline=publish_period,
    )

    if silence_node is not None:
        if silence_node not in cluster.nodes:
            raise ValueError(f"unknown silence_node {silence_node}")
        if silence_at is None:
            silence_at = duration_ns // 2
        victim = cluster.nodes[silence_node]
        hb_name = f"hb-tx:{silence_node}"
        to_crash = [hb_name]
        if silence_node == names[0]:
            to_crash.append("gs-pub")
        if rejoin_backoff_ns is not None:
            victim.set_restart_policy(
                hb_name, max_restarts=1, backoff_ns=rejoin_backoff_ns
            )

        def crash(kern=victim, targets=tuple(to_crash)) -> None:
            for target in targets:
                kern.crash_thread(target, "silenced")

        victim.schedule_event(silence_at, crash, label="net-chaos-silence")

    if t_split:
        cluster.run_until(t_split)
    return NetChaosState(
        cluster=cluster,
        channel=channel,
        monitor=monitor,
        duration_ns=duration_ns,
    )


def net_chaos_continue(
    state: NetChaosState,
    seed: int,
    *,
    drop_p: float = 0.0,
    corrupt_p: float = 0.0,
    faults_from: int = 0,
) -> NetChaosResult:
    """Finish a net-chaos run from a prefix paused at ``faults_from``.

    Arms the seeded Bernoulli wire-fault hook at the split point and
    runs the cluster to the horizon the prefix was built for.  The
    per-frame verdict stream ``random.Random(f"netchaos:{seed}")`` is
    created here and consumed only by frames transmitted after the
    split, so a restored continuation replays the exact cold sequence.
    """
    if not 0.0 <= drop_p <= 1.0 or not 0.0 <= corrupt_p <= 1.0:
        raise ValueError("fault probabilities must be in [0, 1]")
    if drop_p + corrupt_p > 1.0:
        raise ValueError("drop_p + corrupt_p must not exceed 1")
    cluster = state.cluster
    channel = state.channel
    monitor = state.monitor
    if cluster.now != faults_from:
        raise ValueError(
            f"continuation must resume exactly at the split point "
            f"(cluster at {cluster.now}, faults_from {faults_from})"
        )

    # Per-frame Bernoulli verdicts, consumed in deterministic
    # arbitration order -- the wire is the only source of randomness.
    rng = random.Random(f"netchaos:{seed}")

    def fault_hook(start: int, frame) -> str:
        r = rng.random()
        if r < drop_p:
            return "drop"
        if r < drop_p + corrupt_p:
            return "corrupt"
        return "ok"

    if drop_p or corrupt_p:
        cluster.bus.fault_hook = fault_hook

    cluster.run_until(state.duration_ns)

    bus = cluster.bus
    per_node_updates: Dict[str, int] = {}
    seq_gaps = duplicates = stale_episodes = resyncs = 0
    worst_staleness = worst_latency = 0
    total_sequences = channel.published + channel.resync_broadcasts
    ratio = 1.0
    for node in sorted(channel.status_by_node):
        status = channel.status_by_node[node]
        per_node_updates[node] = status.updates
        seq_gaps += status.gaps
        duplicates += status.duplicates
        stale_episodes += status.stale_count
        resyncs += status.resyncs
        worst_staleness = max(worst_staleness, status.staleness_max_ns)
        worst_latency = max(worst_latency, status.latency_max_ns)
        if total_sequences:
            ratio = min(ratio, status.updates / total_sequences)

    error_transitions = []
    bus_off_events = 0
    if bus.error_states is not None:
        for node in sorted(bus.error_states):
            err_state = bus.error_states[node]
            bus_off_events += err_state.bus_off_events
            error_transitions.append((node, tuple(err_state.transitions)))
    membership_events = tuple(monitor.events) if monitor is not None else ()

    blob = repr((
        sorted(per_node_updates.items()),
        seq_gaps, duplicates, stale_episodes, resyncs,
        worst_staleness, worst_latency,
        bus.frames_delivered, bus.frames_dropped, bus.frames_corrupted,
        bus.frames_retransmitted, bus.retransmits_exhausted,
        bus.error_frames, bus.frames_deferred_bus_off, bus.bits_carried,
        tuple(error_transitions),
        membership_events,
    ))
    return NetChaosResult(
        seed=seed,
        duration_ns=state.duration_ns,
        nodes=len(cluster.nodes),
        drop_p=drop_p,
        corrupt_p=corrupt_p,
        max_retransmits=bus.max_retransmits,
        published=channel.published,
        delivery_ratio=ratio,
        per_node_updates=per_node_updates,
        frames_retransmitted=bus.frames_retransmitted,
        retransmits_exhausted=bus.retransmits_exhausted,
        error_frames=bus.error_frames,
        bus_off_events=bus_off_events,
        frames_delivered=bus.frames_delivered,
        arbitration_wait_ns=bus.total_arbitration_wait_ns,
        seq_gaps=seq_gaps,
        duplicates=duplicates,
        stale_episodes=stale_episodes,
        resyncs=resyncs,
        rebroadcasts=channel.resync_broadcasts,
        worst_staleness_ns=worst_staleness,
        worst_latency_ns=worst_latency,
        membership_changes=monitor.changes if monitor is not None else 0,
        membership_events=membership_events,
        signature=hashlib.sha256(blob.encode()).hexdigest(),
    )


def run_net_chaos(
    seed: int,
    duration_ns: int = ms(1000),
    *,
    nodes: int = 4,
    drop_p: float = 0.0,
    corrupt_p: float = 0.0,
    dependability: bool = True,
    max_retransmits: int = 8,
    publish_period: int = ms(10),
    heartbeat_period: int = ms(50),
    freshness_ns: Optional[int] = None,
    stale_policy: str = "hold",
    silence_node: Optional[str] = None,
    silence_at: Optional[int] = None,
    rejoin_backoff_ns: Optional[int] = None,
    faults_from: int = 0,
) -> NetChaosResult:
    """One seeded chaos run against the replicated-channel cluster.

    Builds an ``nodes``-node cluster whose writer (``n0``) publishes a
    sequenced :class:`~repro.net.global_state.GlobalStateChannel`
    update every ``publish_period`` while a seeded Bernoulli fault
    hook drops/corrupts frames with probability ``drop_p`` /
    ``corrupt_p``.  With ``dependability`` the bus retransmits
    (bounded by ``max_retransmits``) and runs the CAN error state
    machines; a :class:`~repro.net.membership.HeartbeatMonitor`
    tracks liveness and re-syncs replicas on rejoin.

    ``silence_node`` + ``silence_at`` crash that node's heartbeat
    sender (and its publisher, if it is the writer) mid-run via
    ``kernel.crash_thread``; ``rejoin_backoff_ns`` grants the sender
    one restart after that back-off, modelling a rejoin.

    ``faults_from`` is the wire-fault activation point: the cluster
    warms up fault-free to it before the Bernoulli hook arms -- the
    cold reference for prefix-snapshot sweeps (0 = armed from t = 0,
    the historical behavior).

    Everything is a pure function of the arguments: the returned
    ``signature`` is byte-identical across runs, processes, and
    ``parallel_map`` worker counts.
    """
    if not 0.0 <= drop_p <= 1.0 or not 0.0 <= corrupt_p <= 1.0:
        raise ValueError("fault probabilities must be in [0, 1]")
    if drop_p + corrupt_p > 1.0:
        raise ValueError("drop_p + corrupt_p must not exceed 1")
    state = net_chaos_prefix(
        duration_ns,
        nodes=nodes,
        dependability=dependability,
        max_retransmits=max_retransmits,
        publish_period=publish_period,
        heartbeat_period=heartbeat_period,
        freshness_ns=freshness_ns,
        stale_policy=stale_policy,
        silence_node=silence_node,
        silence_at=silence_at,
        rejoin_backoff_ns=rejoin_backoff_ns,
        t_split=faults_from,
    )
    return net_chaos_continue(
        state, seed, drop_p=drop_p, corrupt_p=corrupt_p,
        faults_from=faults_from,
    )
