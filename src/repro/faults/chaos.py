"""Chaos harness: a reference workload run under seeded fault storms.

Builds a four-task control workload (a critical control loop, a sensor
task, a logger, and a bulk background task), arms a generated
:class:`~repro.faults.plan.FaultPlan` against it, and reports how the
kernel's overload protection held up: deadline-miss ratio, on-time
service ratio, aborted jobs, and post-burst recovery time.  The
:mod:`benchmarks.bench_faults` sweep and the ``python -m
repro.reproduce faults`` subcommand are both thin wrappers around
:func:`run_chaos`.

Everything is a pure function of ``(seed, duration, rates,
defenses)``: :attr:`ChaosResult.trace_signature` is asserted stable by
the determinism tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.analysis.metrics import miss_ratio, recovery_time_ns
from repro.core.edf import EDFScheduler
from repro.core.overhead import ZERO_OVERHEAD
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.kernel.kernel import Kernel
from repro.kernel.program import Compute, Program
from repro.timeunits import ms

__all__ = ["ChaosResult", "build_chaos_kernel", "run_chaos", "WORKLOAD"]

#: The reference workload: (name, period ns, wcet ns, criticality).
#: U = 0.2 + 0.2 + 0.2 + 0.2 = 0.8 -- comfortably feasible under EDF,
#: so every miss in a chaos run is caused by the injected faults.
WORKLOAD: Tuple[Tuple[str, int, int, int], ...] = (
    ("ctrl", ms(5), ms(1), 2),
    ("sense", ms(10), ms(2), 1),
    ("log", ms(20), ms(4), 0),
    ("bulk", ms(40), ms(8), 0),
)

#: Budget headroom over the declared WCET (enforcement threshold).
BUDGET_FACTOR = 1.5


@dataclass(frozen=True)
class ChaosResult:
    """Outcome of one chaos run."""

    seed: int
    duration_ns: int
    defenses: bool
    faults_planned: int
    faults_injected: Dict[str, int]
    miss_ratio: float
    #: Per-thread on-time completions / expected releases.  Unlike the
    #: miss ratio this punishes shed and backed-off releases too: work
    #: that never became a job still counts against service.
    service_ratio: Dict[str, float]
    jobs_aborted: int
    threads_dead: Tuple[str, ...]
    recovery_ns: int
    #: Stable fingerprint of the full trace (events + job records);
    #: equal runs are byte-identical, across processes too (sha256,
    #: not ``hash()``, which string-salts per process).
    trace_signature: str = field(repr=False, default="")


def build_chaos_kernel(defenses: bool = True) -> Kernel:
    """The reference workload on an EDF kernel, defended or bare.

    With ``defenses`` each task gets a per-job budget of
    ``BUDGET_FACTOR * wcet`` (action ``suspend_job``) and a bounded
    restart policy (3 restarts, one-period initial back-off).
    """
    kernel = Kernel(scheduler=EDFScheduler(ZERO_OVERHEAD))
    for name, period, wcet, criticality in WORKLOAD:
        kernel.create_thread(
            name,
            Program([Compute(wcet)]),
            period=period,
            deadline=period,
            criticality=criticality,
        )
        if defenses:
            kernel.set_budget(
                name, round(BUDGET_FACTOR * wcet), action="suspend_job"
            )
            kernel.set_restart_policy(name, max_restarts=3, backoff_ns=period)
    return kernel


def run_chaos(
    seed: int,
    duration_ns: int = ms(1000),
    *,
    wcet_overrun_rate: float = 0.0,
    crash_rate: float = 0.0,
    clock_jitter_rate: float = 0.0,
    defenses: bool = True,
    burst_end_ns: Optional[int] = None,
    plan: Optional[FaultPlan] = None,
) -> ChaosResult:
    """One seeded chaos run; see the module docstring.

    ``plan`` overrides the generated plan (rates are then ignored).
    ``burst_end_ns`` marks where the fault burst nominally stops for
    the recovery-time metric; it defaults to the last planned fault.
    """
    kernel = build_chaos_kernel(defenses)
    if plan is None:
        plan = FaultPlan.generate(
            seed,
            duration_ns,
            threads=[w[0] for w in WORKLOAD],
            wcet_overrun_rate=wcet_overrun_rate,
            crash_rate=crash_rate,
            clock_jitter_rate=clock_jitter_rate,
        )
    injector = FaultInjector(kernel, plan).install()
    trace = kernel.run_until(duration_ns)
    if burst_end_ns is None:
        burst_end_ns = max((f.time for f in plan), default=0)

    service: Dict[str, float] = {}
    for name, period, _wcet, _crit in WORKLOAD:
        expected = duration_ns // period
        on_time = sum(
            1
            for j in trace.jobs_of(name)
            if j.completion is not None
            and (j.deadline is None or j.completion <= j.deadline)
        )
        service[name] = on_time / expected if expected else 0.0

    signature = trace.signature()
    return ChaosResult(
        seed=seed,
        duration_ns=duration_ns,
        defenses=defenses,
        faults_planned=len(plan),
        faults_injected=dict(injector.injected),
        miss_ratio=miss_ratio(trace, kernel.now),
        service_ratio=service,
        jobs_aborted=sum(t.jobs_aborted for t in kernel.threads.values()),
        threads_dead=tuple(
            sorted(t.name for t in kernel.threads.values() if t.dead)
        ),
        recovery_ns=recovery_time_ns(trace, kernel.now, burst_end_ns),
        trace_signature=signature,
    )
