"""Fault plans: seeded, reproducible schedules of injected faults.

A :class:`FaultPlan` is pure data -- a sorted tuple of :class:`Fault`
records -- so the same plan can be armed against two independent
kernels and produce byte-identical traces.  Plans come from either the
seeded generator (:meth:`FaultPlan.generate`, exponential arrivals per
fault class like :class:`~repro.kernel.devices.AperiodicDevice`) or
explicit construction in tests.

Fault kinds
-----------

``wcet_overrun``
    The next ``Compute`` step of thread ``target`` starting at or
    after ``time`` runs ``magnitude`` ns longer than declared.
``clock_jitter``
    ``magnitude`` ns of timer-tick jitter.  With an empty target the
    CPU loses the time in kernel context at ``time``; with a timer
    name the armed firing of that software timer slips by
    ``magnitude`` ns.
``spurious_irq``
    Interrupt vector ``target`` fires at ``time`` with no device
    behind it.
``dropped_irq``
    Vector ``target`` is masked during ``[time, time + magnitude)``;
    interrupts arriving meanwhile are lost.
``crash``
    Thread ``target`` dies at ``time`` (mid-job included); the
    kernel's restart policy decides what happens next.
``frame_drop`` / ``frame_corrupt``
    The first fieldbus frame whose transmission starts at or after
    ``time`` is lost on the wire / delivered with a failing CRC.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Sequence, Tuple

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan"]

FAULT_KINDS = (
    "wcet_overrun",
    "clock_jitter",
    "spurious_irq",
    "dropped_irq",
    "crash",
    "frame_drop",
    "frame_corrupt",
)

NS_PER_S = 1_000_000_000


@dataclass(frozen=True, order=True)
class Fault:
    """One injected fault: ``kind`` hits ``target`` at virtual ``time``."""

    time: int
    kind: str
    target: str = ""
    magnitude: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"fault time must be non-negative (got {self.time})")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.magnitude < 0:
            raise ValueError(f"fault magnitude must be non-negative ({self})")


class FaultPlan:
    """An immutable, time-sorted schedule of faults."""

    def __init__(self, faults: Iterable[Fault] = ()):
        self._faults: Tuple[Fault, ...] = tuple(sorted(faults))
        for fault in self._faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"not a Fault: {fault!r}")

    @property
    def faults(self) -> Tuple[Fault, ...]:
        return self._faults

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[Fault]:
        return iter(self._faults)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FaultPlan) and self._faults == other._faults

    def __hash__(self) -> int:
        return hash(self._faults)

    def by_kind(self, kind: str) -> Tuple[Fault, ...]:
        """All faults of one kind, in time order."""
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}")
        return tuple(f for f in self._faults if f.kind == kind)

    def after(self, time: int) -> "FaultPlan":
        """The sub-plan of faults strictly after ``time``.

        The continuation's share when a run restores from a prefix
        snapshot at a split point: the prefix ran fault-free through
        ``time``, so only later faults may arm.  ``time <= 0`` returns
        the plan itself (plans are immutable).
        """
        if time <= 0:
            return self
        return FaultPlan(f for f in self._faults if f.time > time)

    def signature(self) -> Tuple[Tuple[int, str, str, int], ...]:
        """Hashable fingerprint used by determinism assertions."""
        return tuple((f.time, f.kind, f.target, f.magnitude) for f in self._faults)

    def __repr__(self) -> str:
        counts: Dict[str, int] = {}
        for fault in self._faults:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
        return f"<FaultPlan {len(self._faults)} faults: {summary or 'none'}>"

    # ------------------------------------------------------------------
    # seeded generation
    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        horizon: int,
        *,
        threads: Sequence[str] = (),
        vectors: Sequence[int] = (),
        wcet_overrun_rate: float = 0.0,
        wcet_overrun_ns: int = 2_000_000,
        clock_jitter_rate: float = 0.0,
        clock_jitter_ns: int = 50_000,
        spurious_irq_rate: float = 0.0,
        dropped_irq_rate: float = 0.0,
        dropped_irq_window_ns: int = 1_000_000,
        crash_rate: float = 0.0,
        frame_drop_rate: float = 0.0,
        frame_corrupt_rate: float = 0.0,
    ) -> "FaultPlan":
        """Draw a plan with exponential per-kind arrival processes.

        Rates are faults per virtual *second*; only faults strictly
        before ``horizon`` (ns) are generated.  Each kind uses its own
        ``random.Random(f"faultplan:{seed}:{kind}")`` stream, so adding
        one kind never perturbs another and the plan depends only on
        ``(seed, horizon, rates, targets)``.
        """
        if horizon <= 0:
            raise ValueError(f"fault horizon must be positive (got {horizon})")

        def overrun(rng: random.Random, t: int) -> Fault:
            extra = max(1, round(wcet_overrun_ns * rng.uniform(0.5, 1.5)))
            return Fault(t, "wcet_overrun", rng.choice(list(threads)), extra)

        def jitter(rng: random.Random, t: int) -> Fault:
            return Fault(t, "clock_jitter", "", clock_jitter_ns)

        def spurious(rng: random.Random, t: int) -> Fault:
            return Fault(t, "spurious_irq", str(rng.choice(list(vectors))))

        def dropped(rng: random.Random, t: int) -> Fault:
            return Fault(
                t, "dropped_irq", str(rng.choice(list(vectors))), dropped_irq_window_ns
            )

        def crash(rng: random.Random, t: int) -> Fault:
            return Fault(t, "crash", rng.choice(list(threads)))

        def frame_drop(rng: random.Random, t: int) -> Fault:
            return Fault(t, "frame_drop")

        def frame_corrupt(rng: random.Random, t: int) -> Fault:
            return Fault(t, "frame_corrupt")

        specs = (
            ("wcet_overrun", wcet_overrun_rate, overrun, threads),
            ("clock_jitter", clock_jitter_rate, jitter, None),
            ("spurious_irq", spurious_irq_rate, spurious, vectors),
            ("dropped_irq", dropped_irq_rate, dropped, vectors),
            ("crash", crash_rate, crash, threads),
            ("frame_drop", frame_drop_rate, frame_drop, None),
            ("frame_corrupt", frame_corrupt_rate, frame_corrupt, None),
        )
        faults = []
        for kind, rate, make, needs in specs:
            if rate < 0:
                raise ValueError(
                    f"{kind} rate must be non-negative (got {rate})"
                )
            if rate == 0:
                continue
            if needs is not None and not needs:
                raise ValueError(
                    f"{kind} rate is {rate} but no targets were provided"
                )
            rng = random.Random(f"faultplan:{seed}:{kind}")
            t = 0
            while True:
                t += max(1, round(rng.expovariate(rate) * NS_PER_S))
                if t >= horizon:
                    break
                faults.append(make(rng, t))
        return cls(faults)
