"""Arming a :class:`~repro.faults.plan.FaultPlan` against a kernel.

The injector is the single point of coupling between the fault
subsystem and the rest of the simulator.  ``install()`` walks the plan
once and schedules each fault on the kernel's discrete-event timeline
(crashes, spurious interrupts, mask windows, jitter) or parks it on a
pending list consumed by the two in-line hooks:

* ``kernel.fault_injector.compute_extra(thread)`` -- consulted by the
  kernel when a ``Compute`` op starts, inflating its duration by any
  pending WCET-overrun faults for that thread;
* ``bus.fault_hook(start, frame)`` -- consulted by the fieldbus when a
  frame wins arbitration, returning ``"ok"``/``"drop"``/``"corrupt"``.

Everything is driven by the plan's virtual-time stamps, so the same
``(workload, plan)`` pair replays to byte-identical traces.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Optional

from repro.faults.plan import Fault, FaultPlan

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread
    from repro.net.fieldbus import Fieldbus
    from repro.net.frame import Frame

__all__ = ["FaultInjector"]


class FaultInjector:
    """Replays a fault plan against one kernel (and optionally one bus)."""

    def __init__(
        self,
        kernel: "Kernel",
        plan: FaultPlan,
        bus: Optional["Fieldbus"] = None,
    ):
        self.kernel = kernel
        self.plan = plan
        self.bus = bus
        #: Faults actually injected, by kind (a planned fault may be
        #: moot: a crash for an already-dead thread, an overrun for a
        #: thread that never computes again, a frame fault after the
        #: last transmission).
        self.injected: Dict[str, int] = {}
        self._installed = False
        # wcet_overrun faults pending per thread, consumed by
        # compute_extra in time order.
        self._overruns: Dict[str, Deque[Fault]] = {}
        # frame faults pending, consumed by the bus hook in time order.
        self._frame_faults: List[Fault] = []

    def _count(self, kind: str) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + 1

    @property
    def injected_total(self) -> int:
        return sum(self.injected.values())

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        """Hook the plan into the kernel's timeline.  Idempotent-unsafe:
        call exactly once, before ``run_until``."""
        if self._installed:
            raise RuntimeError("fault injector already installed")
        self._installed = True
        self.kernel.fault_injector = self
        for fault in self.plan:
            self._arm(fault)
        if self._frame_faults:
            if self.bus is None:
                raise ValueError(
                    "plan contains frame faults but no bus was given"
                )
            self._frame_faults.sort(key=lambda f: f.time)
            self.bus.fault_hook = self._frame_verdict
        return self

    def _arm(self, fault: Fault) -> None:
        kernel = self.kernel
        if fault.kind == "wcet_overrun":
            self._overruns.setdefault(fault.target, deque()).append(fault)
        elif fault.kind == "clock_jitter":
            kernel.schedule_event(
                fault.time,
                lambda f=fault: self._inject_jitter(f),
                label="fault:jitter",
            )
        elif fault.kind == "spurious_irq":
            kernel.schedule_event(
                fault.time,
                lambda f=fault: self._inject_spurious(f),
                label="fault:spurious-irq",
            )
        elif fault.kind == "dropped_irq":
            kernel.schedule_event(
                fault.time,
                lambda f=fault: self._inject_mask(f),
                label="fault:dropped-irq",
            )
        elif fault.kind == "crash":
            kernel.schedule_event(
                fault.time,
                lambda f=fault: self._inject_crash(f),
                label="fault:crash",
            )
        elif fault.kind in ("frame_drop", "frame_corrupt"):
            self._frame_faults.append(fault)
        else:  # pragma: no cover - FaultPlan validates kinds
            raise ValueError(f"unknown fault kind {fault.kind!r}")

    # ------------------------------------------------------------------
    # timeline-driven injections
    # ------------------------------------------------------------------
    def _inject_jitter(self, fault: Fault) -> None:
        kernel = self.kernel
        timer = kernel.timers.get(fault.target) if fault.target else None
        if fault.target and timer is None:
            kernel.trace.note(
                kernel.now, "fault-jitter-moot", f"no timer {fault.target}"
            )
            return
        if timer is not None:
            if not timer.armed:
                kernel.trace.note(
                    kernel.now, "fault-jitter-moot", f"{fault.target} not armed"
                )
                return
            timer.delay(fault.magnitude)
            kernel.trace.note(
                kernel.now, "fault-jitter", f"{fault.target} +{fault.magnitude}"
            )
        else:
            # Tick jitter: the CPU loses the time in kernel context.
            kernel.trace.note(kernel.now, "fault-jitter", f"+{fault.magnitude}")
            kernel.charge(fault.magnitude, "fault")
            kernel.request_reschedule()
        self._count("clock_jitter")

    def _inject_spurious(self, fault: Fault) -> None:
        kernel = self.kernel
        kernel.trace.note(
            kernel.now, "fault-spurious-irq", f"vector {fault.target}"
        )
        self._count("spurious_irq")
        kernel.interrupts._dispatch(int(fault.target))

    def _inject_mask(self, fault: Fault) -> None:
        kernel = self.kernel
        vector = int(fault.target)
        kernel.trace.note(
            kernel.now,
            "fault-irq-masked",
            f"vector {vector} for {fault.magnitude}",
        )
        self._count("dropped_irq")
        kernel.interrupts.mask(vector)
        kernel.schedule_event(
            fault.time + fault.magnitude,
            lambda: kernel.interrupts.unmask(vector),
            label="fault:irq-unmask",
        )

    def _inject_crash(self, fault: Fault) -> None:
        kernel = self.kernel
        thread = kernel.threads.get(fault.target)
        if thread is None or thread.dead:
            kernel.trace.note(
                kernel.now, "fault-crash-moot", fault.target or "?"
            )
            return
        self._count("crash")
        kernel.crash_thread(fault.target, reason="injected")

    # ------------------------------------------------------------------
    # pull hooks (kernel / bus consult these)
    # ------------------------------------------------------------------
    def compute_extra(self, thread: "Thread") -> int:
        """Extra ns this thread's starting ``Compute`` op must run.

        Consumes every pending WCET-overrun fault for the thread whose
        stamp is at or before now; their magnitudes add up (two faults
        landing inside one long job both stretch it).
        """
        pending = self._overruns.get(thread.name)
        if not pending:
            return 0
        now = self.kernel.now
        extra = 0
        while pending and pending[0].time <= now:
            extra += pending.popleft().magnitude
            self._count("wcet_overrun")
        return extra

    def _frame_verdict(self, start: int, frame: "Frame") -> str:
        """Bus hook: fate of the frame whose wire time starts at
        ``start``.  The earliest pending frame fault at or before
        ``start`` fires (drop beats corrupt only by plan order)."""
        while self._frame_faults and self._frame_faults[0].time <= start:
            fault = self._frame_faults.pop(0)
            self._count(fault.kind)
            self.kernel.trace.note(
                start,
                f"fault-{fault.kind.replace('_', '-')}",
                f"id={frame.can_id:#x}",
            )
            return "drop" if fault.kind == "frame_drop" else "corrupt"
        return "ok"
