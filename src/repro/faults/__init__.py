"""Deterministic fault injection and overload protection (extension).

The paper's evaluation stops at the breakdown-utilization point; an
embedded control kernel must also behave predictably *past* it and in
the presence of hardware faults.  This package injects those scenarios
into the discrete-event timeline, reproducibly:

* :mod:`repro.faults.plan` -- a seeded :class:`FaultPlan` naming every
  fault (WCET overrun, clock/timer jitter, spurious/dropped interrupt,
  task crash, lost/corrupted fieldbus frame) with its injection time;
* :mod:`repro.faults.injector` -- a :class:`FaultInjector` that arms a
  plan against a live kernel (and optionally its fieldbus);
* :mod:`repro.faults.chaos` -- the chaos harness sweeping fault rates
  and reporting deadline-miss ratio and recovery time.

Same seed + same plan => byte-identical traces (asserted by
``tests/test_faults.py``); the kernel-side defenses these faults
exercise live in :mod:`repro.kernel.kernel` (execution-time budgets,
deadline-miss handlers, bounded restart) and :mod:`repro.core.csd`
(overload shedding).
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, Fault, FaultPlan

__all__ = ["FAULT_KINDS", "Fault", "FaultPlan", "FaultInjector"]

# run_chaos / run_net_chaos are imported from repro.faults.chaos
# directly -- the chaos module pulls in the analysis + net stacks and
# stays out of the package's base import cost.
