"""repro: a reproduction of EMERALDS, the small-memory real-time microkernel.

EMERALDS (Zuberi, Pillai & Shin, SOSP 1999) re-designs the core RTOS
services -- task scheduling, semaphores, and intra-node message
passing -- around properties of small-memory embedded systems.  This
package reimplements the whole system as a cost-faithful discrete-event
kernel plus the analytic machinery behind the paper's evaluation:

* :mod:`repro.core` -- the CSD scheduler family, EDF/RM baselines, the
  Table 1 overhead model, and overhead-aware schedulability analysis;
* :mod:`repro.kernel` -- the microkernel substrate (threads, dispatch,
  syscalls, interrupts, devices, memory protection, timers);
* :mod:`repro.sync` -- semaphores with the Section 6 optimizations,
  condition variables, and the hint-inserting code parser;
* :mod:`repro.ipc` -- mailboxes, shared memory, and state messages;
* :mod:`repro.sim` -- the event engine, workload generators, traces,
  and the breakdown-utilization experiment drivers.

Quick start::

    from repro import Kernel, CSDScheduler, Program, Compute, ms

    kernel = Kernel(CSDScheduler(dp_queue_count=1))
    kernel.create_thread(
        "control", Program([Compute(ms(1))]), period=ms(10), csd_queue=0
    )
    trace = kernel.run_until(ms(100))
    print(trace.summary(kernel.now))
"""

from repro.core import (
    CSDScheduler,
    EDFScheduler,
    OverheadModel,
    RMHeapScheduler,
    RMScheduler,
    Schedulable,
    Scheduler,
    TaskSpec,
    Workload,
    ZERO_OVERHEAD,
    csd_schedulable,
    edf_schedulable,
    find_feasible_splits,
    rm_schedulable,
    table2_workload,
)
from repro.ipc import Mailbox, SharedMemory, StateChannel, required_slots
from repro.kernel import (
    Acquire,
    Call,
    Compute,
    CvBroadcast,
    CvSignal,
    CvWait,
    Kernel,
    KernelError,
    Process,
    Program,
    Recv,
    Release,
    Send,
    Signal,
    Sleep,
    StateRead,
    StateWrite,
    Syscalls,
    Thread,
    Wait,
)
from repro.net import Cluster, Fieldbus, Frame, NetInterface, net_send
from repro.sim import breakdown_utilization, figure_series, generate_workload
from repro.sync import EmeraldsSemaphore, StandardSemaphore, insert_hints
from repro.timeunits import ms, seconds, to_ms, to_us, us

__version__ = "1.0.0"

__all__ = [
    "Acquire",
    "CSDScheduler",
    "Call",
    "Cluster",
    "Compute",
    "CvBroadcast",
    "CvSignal",
    "CvWait",
    "EDFScheduler",
    "EmeraldsSemaphore",
    "Fieldbus",
    "Frame",
    "Kernel",
    "KernelError",
    "Mailbox",
    "NetInterface",
    "OverheadModel",
    "Process",
    "Program",
    "RMHeapScheduler",
    "RMScheduler",
    "Recv",
    "Release",
    "Schedulable",
    "Scheduler",
    "Send",
    "SharedMemory",
    "Signal",
    "Sleep",
    "StandardSemaphore",
    "StateChannel",
    "StateRead",
    "StateWrite",
    "Syscalls",
    "TaskSpec",
    "Thread",
    "Wait",
    "Workload",
    "ZERO_OVERHEAD",
    "breakdown_utilization",
    "csd_schedulable",
    "edf_schedulable",
    "figure_series",
    "find_feasible_splits",
    "generate_workload",
    "insert_hints",
    "ms",
    "net_send",
    "required_slots",
    "rm_schedulable",
    "seconds",
    "table2_workload",
    "to_ms",
    "to_us",
    "us",
]
