"""Heartbeat membership: crash detection over the fieldbus.

The paper's distributed targets have no global failure detector; EMERALDS
gives each node only the bus.  The classic fieldbus answer is a
heartbeat protocol: every node broadcasts a tiny high-priority frame
each period, and every node runs a watchdog that marks peers *down*
after ``timeout_factor`` periods of silence and *up* again the moment
a heartbeat reappears.  Both sides are ordinary user-level threads
(the Figure 1 driver pattern), so detection latency is bounded by the
watchdog's period and is fully deterministic in virtual time.

:class:`HeartbeatMonitor` spawns per node:

* ``hb-tx:<node>`` -- a periodic sender thread.  Crashing it (e.g. via
  :func:`repro.faults.injector` plans or ``kernel.crash_thread``)
  silences the node; giving it a restart policy models rejoin.
* ``hb-watch:<node>`` -- a polling watchdog (period / ``watch_divisor``)
  that drains heartbeat frames (passing other traffic back to the rx
  queue), refreshes per-peer last-heard stamps, and flips membership.

Each node keeps its *own* view -- there is no consensus round -- but
because the bus broadcasts and virtual time is global, all live nodes
converge on identical views deterministically.  Transitions land in
``events``, in the kernel trace (``membership-down`` /
``membership-up``), and in per-node ``on_change`` callbacks (used by
:meth:`repro.net.global_state.GlobalStateChannel.attach_membership`
to re-sync replicas on rejoin).

Worst-case detection: a node silenced right after its last heartbeat
is marked down within ``timeout_factor`` periods plus one watchdog
period -- with the defaults (1.5, divisor 2) inside two heartbeat
periods.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Tuple

from repro.kernel.program import Call, Program
from repro.net.frame import Frame
from repro.timeunits import ms

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.net.cluster import Cluster
    from repro.net.node import NetInterface

__all__ = ["HeartbeatMonitor", "HEARTBEAT_CAN_ID"]

#: Default arbitration identifier for heartbeats -- nearly the highest
#: priority on the bus, so liveness survives data-traffic congestion.
HEARTBEAT_CAN_ID = 0x01

#: Type of one membership transition: (time, observer, peer, "down"/"up").
MembershipEvent = Tuple[int, str, str, str]


class HeartbeatMonitor:
    """Heartbeat broadcast + per-node liveness watchdogs on a cluster.

    Create it *after* every node has been added.  ``timeout_factor``
    scales the heartbeat period into the silence threshold;
    ``watch_divisor`` sets how many times per period each watchdog
    re-checks.
    """

    def __init__(
        self,
        cluster: "Cluster",
        can_id: int = HEARTBEAT_CAN_ID,
        period: int = ms(50),
        timeout_factor: float = 1.5,
        watch_divisor: int = 2,
        hb_size: int = 1,
    ):
        if period <= 0:
            raise ValueError("heartbeat period must be positive")
        if timeout_factor < 1.0:
            raise ValueError("timeout_factor must be >= 1")
        if watch_divisor < 1:
            raise ValueError("watch_divisor must be >= 1")
        if not cluster.nodes:
            raise ValueError("cluster has no nodes to monitor")
        self.cluster = cluster
        self.can_id = can_id
        self.period = period
        self.hb_size = hb_size
        self.timeout_ns = int(period * timeout_factor)
        self.watch_period = max(1, period // watch_divisor)
        #: observer -> peer -> local time a heartbeat was last heard
        #: (nodes start trusted: stamp 0 at cluster start).
        self.last_heard: Dict[str, Dict[str, int]] = {}
        #: observer -> peer -> currently considered alive
        self._alive: Dict[str, Dict[str, bool]] = {}
        #: Every transition, in global detection order.
        self.events: List[MembershipEvent] = []
        self.changes = 0
        self._callbacks: Dict[str, List[Callable[[int, str, bool], None]]] = {}
        # The global transition record is cross-kernel state: route it
        # through the cluster's effect-log barrier so ``events`` comes
        # out in deterministic global order in every sync mode (and so
        # the parent's copy stays authoritative under sync="parallel").
        self._handle = cluster.register_shared(self)

        for node_name, kernel in cluster.nodes.items():
            interface = cluster.interfaces[node_name]
            if interface.accept is not None:
                interface.accept.add(can_id)
            peers = [p for p in cluster.nodes if p != node_name]
            self.last_heard[node_name] = {p: 0 for p in peers}
            self._alive[node_name] = {p: True for p in peers}
            self._spawn_sender(kernel, interface, node_name)
            self._spawn_watchdog(kernel, interface, node_name)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def view(self, node: str) -> Dict[str, bool]:
        """``node``'s current membership view (peer -> alive)."""
        return dict(self._alive[node])

    def alive(self, observer: str, peer: str) -> bool:
        """Whether ``observer`` currently believes ``peer`` is alive."""
        return self._alive[observer][peer]

    def on_change(
        self, node: str, fn: Callable[[int, str, bool], None]
    ) -> None:
        """Call ``fn(time, peer, alive)`` when ``node``'s view flips."""
        if node not in self._alive:
            raise ValueError(f"unknown node {node}")
        self._callbacks.setdefault(node, []).append(fn)

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _spawn_sender(
        self, kernel: "Kernel", interface: "NetInterface", node_name: str
    ) -> None:
        can_id = self.can_id
        size = self.hb_size

        def beat(kern: "Kernel", thread) -> None:
            interface.transmit(
                Frame(can_id=can_id, payload=("hb", node_name), size=size)
            )

        kernel.create_thread(
            f"hb-tx:{node_name}",
            Program([Call(beat, label="hb-beat")]),
            period=self.period,
            deadline=self.period,
        )

    def _spawn_watchdog(
        self, kernel: "Kernel", interface: "NetInterface", node_name: str
    ) -> None:
        can_id = self.can_id
        heard = self.last_heard[node_name]
        alive = self._alive[node_name]

        def watch(kern: "Kernel", thread) -> None:
            passthrough = []
            while True:
                frame = interface.receive()
                if frame is None:
                    break
                if frame.can_id == can_id and frame.sender in heard:
                    heard[frame.sender] = kern.now
                    if not alive[frame.sender]:
                        self._transition(kern, node_name, frame.sender, True)
                else:
                    passthrough.append(frame)
            interface.rx_queue.extend(passthrough)
            now = kern.now
            for peer in heard:
                if alive[peer] and now - heard[peer] > self.timeout_ns:
                    self._transition(kern, node_name, peer, False)

        kernel.create_thread(
            f"hb-watch:{node_name}",
            Program([Call(watch, label="hb-watch")]),
            period=self.watch_period,
            deadline=self.watch_period,
        )

    def _transition(
        self, kern: "Kernel", observer: str, peer: str, up: bool
    ) -> None:
        # Node-local consequences happen immediately (the observer's
        # view, its trace, its callbacks -- all same-node state, valid
        # inside a worker shard); the *global* transition record is
        # staged on the effect log and lands via ``_apply_transition``
        # at the window barrier, merged across nodes by (time, node,
        # seq).
        self._alive[observer][peer] = up
        status = "up" if up else "down"
        self.cluster.log_effect(
            observer, ("ms", kern.now, self._handle, observer, peer, up)
        )
        kern.trace.note(
            kern.now, f"membership-{status}", f"{observer} sees {peer} {status}"
        )
        for fn in self._callbacks.get(observer, ()):
            fn(kern.now, peer, up)

    def _apply_transition(
        self, time: int, observer: str, peer: str, up: bool
    ) -> None:
        """Barrier-side effect application (parent process).

        Re-setting ``_alive`` is idempotent in the serial modes (the
        observer already flipped its own entry) and refreshes the
        parent's copy when the flip happened inside a worker.
        """
        self._alive[observer][peer] = up
        self.events.append((time, observer, peer, "up" if up else "down"))
        self.changes += 1
