"""Global state messages: state channels replicated over the fieldbus.

The state-message idea (single writer, readers always see the latest
value, nobody blocks) extends naturally to the paper's distributed
targets: the writing node broadcasts each update as a high-priority
fieldbus frame, and every other node's network driver deposits it into
a *local replica* of the channel.  Readers on any node then use the
ordinary lock-free local read path -- remote communication costs are
paid only by the writer and the per-node driver, never by readers.

:class:`GlobalStateChannel` wires this pattern up on a
:class:`~repro.net.cluster.Cluster`:

* on the writer node it creates the authoritative local channel and
  provides :meth:`publish_op` -- an op that writes locally *and*
  queues the broadcast frame;
* on every other node it creates a replica channel plus a small
  user-level driver thread (the Figure 1 pattern) that drains the
  node's rx queue into the replica.

Replicas lag the authoritative copy by the bus latency (one frame
time plus arbitration), which is exactly the semantics periodic
sensor data wants: the freshest value that has physically arrived.

Freshness guarantees (opt-in): a *sequenced* channel stamps every
broadcast with ``(sequence, publish_time, value)``.  Replica drivers
then detect lost updates (sequence gaps), discard stale duplicates,
and -- when ``freshness_ns`` is set -- bound how old a replica may
grow before the node must degrade: the driver checks the replica's
age every period, and past the bound it either *holds* the last value
(``stale_policy="hold"``) or *invalidates* the replica by writing
``None`` (``stale_policy="invalidate"``), in both cases marking the
:class:`ReplicaStatus` stale, tracing the episode, and invoking the
``on_stale`` degradation callback.  The first update after a stale
episode is a *resync*.  :meth:`attach_membership` additionally
re-broadcasts the latest value whenever the writer node observes a
peer rejoin, so recovered nodes refresh without waiting for the next
periodic publish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.ipc.state_message import StateChannel
from repro.kernel.program import Call, Op, Program
from repro.net.frame import Frame
from repro.timeunits import ms

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.net.cluster import Cluster
    from repro.net.membership import HeartbeatMonitor
    from repro.net.node import NetInterface

__all__ = ["GlobalStateChannel", "ReplicaStatus", "STALE_POLICIES"]


# ----------------------------------------------------------------------
# Module-level query functions (picklable by reference) evaluated where
# a node's state lives -- directly in serial modes, inside the owning
# worker under ``sync="parallel"`` (see ``Cluster.node_query``).
# ----------------------------------------------------------------------
def _query_replica_status(cluster, node, handle):
    return cluster._shared[handle].status_by_node.get(node)


def _query_replica_read(cluster, node, handle):
    return cluster._shared[handle].replicas[node].read()


def _query_writer_stats(cluster, node, handle):
    channel = cluster._shared[handle]
    return {
        "published": channel.published,
        "resync_broadcasts": channel.resync_broadcasts,
        "seq": channel._seq,
    }

#: How a replica degrades when its age exceeds ``freshness_ns``.
STALE_POLICIES = ("hold", "invalidate")


@dataclass
class ReplicaStatus:
    """Per-reader health of one replicated channel (sequenced mode).

    Attributes:
        node: Reader node this status describes.
        last_seq: Highest sequence number applied to the replica.
        last_publish_ns: Publish timestamp of that update (writer's
            clock; all nodes share virtual time).
        last_update_ns: Local time the replica last changed.
        updates: Updates applied (including resyncs).
        gaps: Total updates lost to sequence gaps.
        duplicates: Frames discarded as already-seen (``seq <=
            last_seq`` -- e.g. rejoin re-broadcasts that raced the
            periodic publish).
        stale: True while the replica is older than ``freshness_ns``.
        stale_count: Stale episodes entered.
        resyncs: Updates that ended a stale episode.
        latency_sum_ns / latency_max_ns: Publish-to-apply latency.
        staleness_max_ns: Worst replica age observed at any check.
    """

    node: str
    last_seq: int = 0
    last_publish_ns: int = -1
    last_update_ns: int = -1
    updates: int = 0
    gaps: int = 0
    duplicates: int = 0
    stale: bool = False
    stale_count: int = 0
    resyncs: int = 0
    latency_sum_ns: int = 0
    latency_max_ns: int = 0
    staleness_max_ns: int = 0


class GlobalStateChannel:
    """A state-message channel replicated across cluster nodes.

    ``readers`` restricts the replica set: only the named nodes get a
    local replica and driver (default: every node).  Nodes whose
    interface has an acceptance filter get the channel's identifier
    added to it automatically.

    ``sequenced`` (implied by setting ``freshness_ns``) turns on wire
    sequence numbers and the :class:`ReplicaStatus` bookkeeping;
    ``freshness_ns`` additionally bounds replica age, degrading per
    ``stale_policy`` and notifying ``on_stale(node, status)``.
    """

    def __init__(
        self,
        cluster: "Cluster",
        name: str,
        can_id: int,
        writer_node: str,
        slots: int = 4,
        frame_size: int = 8,
        driver_period: Optional[int] = None,
        driver_queue: Optional[int] = None,
        readers: Optional[list] = None,
        sequenced: bool = False,
        freshness_ns: Optional[int] = None,
        stale_policy: str = "hold",
        on_stale: Optional[Callable[[str, ReplicaStatus], None]] = None,
    ):
        if writer_node not in cluster.nodes:
            raise ValueError(f"unknown writer node {writer_node}")
        if readers is not None:
            unknown = set(readers) - set(cluster.nodes)
            if unknown:
                raise ValueError(f"unknown reader nodes {sorted(unknown)}")
        if freshness_ns is not None and freshness_ns <= 0:
            raise ValueError("freshness_ns must be positive (or None)")
        if stale_policy not in STALE_POLICIES:
            raise ValueError(
                f"stale_policy {stale_policy!r}; expected one of {STALE_POLICIES}"
            )
        self.cluster = cluster
        self.name = name
        self.can_id = can_id
        self.writer_node = writer_node
        self.frame_size = frame_size
        self.sequenced = sequenced or freshness_ns is not None
        self.freshness_ns = freshness_ns
        self.stale_policy = stale_policy
        self.on_stale = on_stale
        #: Local channel per node (the writer's is authoritative).
        self.replicas: Dict[str, StateChannel] = {}
        #: Replica health per reader node (sequenced mode only).
        self.status_by_node: Dict[str, ReplicaStatus] = {}
        # writer-side state
        self._seq = 0
        self._last_value = None
        self.published = 0
        self.resync_broadcasts = 0
        # Writer counters and replica statuses live on their nodes
        # (i.e. in a worker shard under sync="parallel"); the handle
        # lets the query helpers reach this channel on either side of
        # the fork.
        self._handle = cluster.register_shared(self)
        period = driver_period if driver_period is not None else ms(10)

        for node_name, kernel in cluster.nodes.items():
            if (
                readers is not None
                and node_name != writer_node
                and node_name not in readers
            ):
                continue
            channel = kernel.create_channel(f"gs:{name}@{node_name}", slots=slots)
            self.replicas[node_name] = channel
            if node_name == writer_node:
                continue
            interface = cluster.interfaces[node_name]
            if interface.accept is not None:
                interface.accept.add(can_id)
            if self.sequenced:
                self.status_by_node[node_name] = ReplicaStatus(node_name)
            self._spawn_replica_driver(
                kernel, interface, channel, period, driver_queue, node_name
            )

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def publish(self, kernel: "Kernel", thread, value) -> None:
        """Write the authoritative channel and broadcast the update.

        Charged to the calling thread (use from a ``Call`` op on the
        writer node; :meth:`publish_op` wraps exactly this).
        """
        channel = self.replicas[self.writer_node]
        interface = self.cluster.interfaces[self.writer_node]
        kernel.charge(kernel.model.state_msg_write_ns, "state-msg")
        writer_name = thread.name if thread is not None else f"gs:{self.name}"
        channel.write(value, writer_name=writer_name)
        if self.sequenced:
            self._seq += 1
            self._last_value = value
            payload = (self._seq, kernel.now, value)
        else:
            payload = value
        self.published += 1
        interface.transmit(
            Frame(can_id=self.can_id, payload=payload, size=self.frame_size)
        )

    def publish_op(self, value_fn=None, value=None) -> Op:
        """An op for the writer's program: update the local channel and
        broadcast the new value.

        Pass either a constant ``value`` or a ``value_fn(kernel,
        thread)`` producing the value at publish time.
        """

        def call(kernel: "Kernel", thread) -> None:
            payload = value_fn(kernel, thread) if value_fn is not None else value
            self.publish(kernel, thread, payload)

        return Call(call, label=f"gs-publish:{self.name}")

    def attach_membership(self, monitor: "HeartbeatMonitor") -> None:
        """Re-broadcast the latest value when a peer rejoins.

        Registers on the writer node's membership view: the moment the
        writer's watchdog sees a previously-down peer alive again, the
        current value goes out with a fresh sequence number, so the
        rejoined node resynchronizes without waiting for the next
        periodic publish (duplicates are discarded by ``last_seq`` on
        nodes that never went stale).
        """
        writer = self.writer_node
        kernel = self.cluster.nodes[writer]
        interface = self.cluster.interfaces[writer]

        def on_change(time: int, peer: str, alive: bool) -> None:
            if not alive or not (self.sequenced and self.published):
                return
            self._seq += 1
            self.resync_broadcasts += 1
            kernel.trace.note(
                kernel.now,
                "gs-rebroadcast",
                f"{self.name} seq={self._seq} for {peer}",
            )
            interface.transmit(
                Frame(
                    can_id=self.can_id,
                    payload=(self._seq, kernel.now, self._last_value),
                    size=self.frame_size,
                )
            )

        monitor.on_change(writer, on_change)

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def local_channel(self, node: str) -> StateChannel:
        """The replica on ``node`` (read it with StateRead ops)."""
        return self.replicas[node]

    def channel_name(self, node: str) -> str:
        """The kernel-registered name of ``node``'s replica."""
        return self.replicas[node].name

    def status(self, node: str) -> ReplicaStatus:
        """Replica health of reader ``node`` (sequenced mode only).

        Location-transparent: under ``sync="parallel"`` the status is
        fetched from the worker that owns ``node`` (a value copy); in
        serial modes this is the live object, as before.
        """
        status = self.cluster.node_query(
            node, _query_replica_status, self._handle
        )
        if status is None:
            raise KeyError(node)
        return status

    def statuses(self) -> Dict[str, ReplicaStatus]:
        """All replica statuses, keyed by reader node (node order)."""
        return {
            node: status
            for node, status in self.cluster.map_nodes(
                _query_replica_status, self._handle
            ).items()
            if status is not None
        }

    def read_replica(self, node: str):
        """Read ``node``'s replica where it lives (driver-visible
        value; works across the fork under ``sync="parallel"``)."""
        return self.cluster.node_query(
            node, _query_replica_read, self._handle
        )

    def writer_stats(self) -> Dict[str, int]:
        """Writer-side counters (``published``, ``resync_broadcasts``,
        ``seq``), fetched from the writer node's owner."""
        return self.cluster.node_query(
            self.writer_node, _query_writer_stats, self._handle
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _spawn_replica_driver(
        self,
        kernel: "Kernel",
        interface: "NetInterface",
        channel: StateChannel,
        period: int,
        driver_queue: Optional[int],
        node_name: str,
    ) -> None:
        can_id = self.can_id
        channel_gs_name = self.name
        sequenced = self.sequenced
        status = self.status_by_node.get(node_name)

        def apply_update(kern: "Kernel", thread, payload) -> None:
            if not sequenced:
                kern.charge(kern.model.state_msg_write_ns, "state-msg")
                channel.write(payload, writer_name=thread.name)
                return
            seq, t_pub, value = payload
            if seq <= status.last_seq:
                status.duplicates += 1
                return
            if seq > status.last_seq + 1:
                lost = seq - status.last_seq - 1
                status.gaps += lost
                kern.trace.note(
                    kern.now,
                    "gs-seq-gap",
                    f"{channel_gs_name}@{node_name} lost {lost} "
                    f"(seq {status.last_seq} -> {seq})",
                )
            kern.charge(kern.model.state_msg_write_ns, "state-msg")
            channel.write(value, writer_name=thread.name)
            latency = kern.now - t_pub
            status.last_seq = seq
            status.last_publish_ns = t_pub
            status.last_update_ns = kern.now
            status.updates += 1
            status.latency_sum_ns += latency
            if latency > status.latency_max_ns:
                status.latency_max_ns = latency
            if status.stale:
                status.stale = False
                status.resyncs += 1
                kern.trace.note(
                    kern.now,
                    "gs-resync",
                    f"{channel_gs_name}@{node_name} seq={seq}",
                )

        def drain(kern: "Kernel", thread) -> None:
            # Drain everything; frames for other channels go back to
            # the interface queue untouched.
            passthrough = []
            while True:
                frame = interface.receive()
                if frame is None:
                    break
                if frame.can_id == can_id:
                    apply_update(kern, thread, frame.payload)
                else:
                    passthrough.append(frame)
            interface.rx_queue.extend(passthrough)
            self._check_freshness(kern, thread, channel, node_name, status)

        # The driver *polls* rather than blocking on the rx event:
        # "for periodic events, polling is usually used to interact
        # with the environment" (Section 6.3.2) -- state updates are
        # periodic, and a blocking driver would trip its own deadline
        # whenever the writer publishes slower than the driver runs.
        # Replica staleness is bounded by bus latency + driver period.
        kernel.create_thread(
            f"gs-driver:{channel_gs_name}",
            Program([Call(drain)]),
            period=period,
            deadline=period,
            csd_queue=driver_queue,
        )

    def _check_freshness(
        self,
        kern: "Kernel",
        thread,
        channel: StateChannel,
        node_name: str,
        status: Optional[ReplicaStatus],
    ) -> None:
        """Per-period replica age check (the freshness watchdog)."""
        if self.freshness_ns is None or status is None or not status.updates:
            return
        age = kern.now - status.last_publish_ns
        if age > status.staleness_max_ns:
            status.staleness_max_ns = age
        if age <= self.freshness_ns or status.stale:
            return
        status.stale = True
        status.stale_count += 1
        kern.trace.note(
            kern.now,
            "gs-stale",
            f"{self.name}@{node_name} age={age} bound={self.freshness_ns} "
            f"policy={self.stale_policy}",
        )
        if self.stale_policy == "invalidate":
            # Readers observe the degradation: the replica now holds
            # None until the next genuine update (which also resyncs).
            kern.charge(kern.model.state_msg_write_ns, "state-msg")
            channel.write(None, writer_name=thread.name)
        if self.on_stale is not None:
            self.on_stale(node_name, status)
