"""Global state messages: state channels replicated over the fieldbus.

The state-message idea (single writer, readers always see the latest
value, nobody blocks) extends naturally to the paper's distributed
targets: the writing node broadcasts each update as a high-priority
fieldbus frame, and every other node's network driver deposits it into
a *local replica* of the channel.  Readers on any node then use the
ordinary lock-free local read path -- remote communication costs are
paid only by the writer and the per-node driver, never by readers.

:class:`GlobalStateChannel` wires this pattern up on a
:class:`~repro.net.cluster.Cluster`:

* on the writer node it creates the authoritative local channel and
  provides :meth:`publish_op` -- an op that writes locally *and*
  queues the broadcast frame;
* on every other node it creates a replica channel plus a small
  user-level driver thread (the Figure 1 pattern) that drains the
  node's rx queue into the replica.

Replicas lag the authoritative copy by the bus latency (one frame
time plus arbitration), which is exactly the semantics periodic
sensor data wants: the freshest value that has physically arrived.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.ipc.state_message import StateChannel
from repro.kernel.program import Call, Op, Program
from repro.net.frame import Frame
from repro.timeunits import ms

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.net.cluster import Cluster
    from repro.net.node import NetInterface

__all__ = ["GlobalStateChannel"]


class GlobalStateChannel:
    """A state-message channel replicated across cluster nodes.

    ``readers`` restricts the replica set: only the named nodes get a
    local replica and driver (default: every node).  Nodes whose
    interface has an acceptance filter get the channel's identifier
    added to it automatically.
    """

    def __init__(
        self,
        cluster: "Cluster",
        name: str,
        can_id: int,
        writer_node: str,
        slots: int = 4,
        frame_size: int = 8,
        driver_period: Optional[int] = None,
        driver_queue: Optional[int] = None,
        readers: Optional[list] = None,
    ):
        if writer_node not in cluster.nodes:
            raise ValueError(f"unknown writer node {writer_node}")
        if readers is not None:
            unknown = set(readers) - set(cluster.nodes)
            if unknown:
                raise ValueError(f"unknown reader nodes {sorted(unknown)}")
        self.cluster = cluster
        self.name = name
        self.can_id = can_id
        self.writer_node = writer_node
        self.frame_size = frame_size
        #: Local channel per node (the writer's is authoritative).
        self.replicas: Dict[str, StateChannel] = {}
        period = driver_period if driver_period is not None else ms(10)

        for node_name, kernel in cluster.nodes.items():
            if (
                readers is not None
                and node_name != writer_node
                and node_name not in readers
            ):
                continue
            channel = kernel.create_channel(f"gs:{name}@{node_name}", slots=slots)
            self.replicas[node_name] = channel
            if node_name == writer_node:
                continue
            interface = cluster.interfaces[node_name]
            if interface.accept is not None:
                interface.accept.add(can_id)
            self._spawn_replica_driver(
                kernel, interface, channel, period, driver_queue
            )

    # ------------------------------------------------------------------
    # writer side
    # ------------------------------------------------------------------
    def publish_op(self, value_fn=None, value=None) -> Op:
        """An op for the writer's program: update the local channel and
        broadcast the new value.

        Pass either a constant ``value`` or a ``value_fn(kernel,
        thread)`` producing the value at publish time.
        """
        interface = self.cluster.interfaces[self.writer_node]
        channel = self.replicas[self.writer_node]

        def call(kernel: "Kernel", thread) -> None:
            payload = value_fn(kernel, thread) if value_fn is not None else value
            kernel.charge(kernel.model.state_msg_write_ns, "state-msg")
            channel.write(payload, writer_name=thread.name)
            interface.transmit(
                Frame(can_id=self.can_id, payload=payload, size=self.frame_size)
            )

        return Call(call, label=f"gs-publish:{self.name}")

    # ------------------------------------------------------------------
    # reader side
    # ------------------------------------------------------------------
    def local_channel(self, node: str) -> StateChannel:
        """The replica on ``node`` (read it with StateRead ops)."""
        return self.replicas[node]

    def channel_name(self, node: str) -> str:
        """The kernel-registered name of ``node``'s replica."""
        return self.replicas[node].name

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    def _spawn_replica_driver(
        self,
        kernel: "Kernel",
        interface: "NetInterface",
        channel: StateChannel,
        period: int,
        driver_queue: Optional[int],
    ) -> None:
        can_id = self.can_id
        channel_gs_name = self.name

        def drain(kern: "Kernel", thread) -> None:
            # Drain everything; frames for other channels go back to
            # the interface queue untouched.
            passthrough = []
            while True:
                frame = interface.receive()
                if frame is None:
                    break
                if frame.can_id == can_id:
                    kern.charge(kern.model.state_msg_write_ns, "state-msg")
                    channel.write(frame.payload, writer_name=thread.name)
                else:
                    passthrough.append(frame)
            interface.rx_queue.extend(passthrough)

        # The driver *polls* rather than blocking on the rx event:
        # "for periodic events, polling is usually used to interact
        # with the environment" (Section 6.3.2) -- state updates are
        # periodic, and a blocking driver would trip its own deadline
        # whenever the writer publishes slower than the driver runs.
        # Replica staleness is bounded by bus latency + driver period.
        kernel.create_thread(
            f"gs-driver:{channel_gs_name}",
            Program([Call(drain)]),
            period=period,
            deadline=period,
            csd_queue=driver_queue,
        )
