"""Fieldbus schedulability analysis for periodic message streams.

The paper defers inter-node scheduling to its companion work [37, 40]
(deadline-based scheduling of messages on CAN-class fieldbuses).  This
module implements the core of that layer for our bus model: worst-case
response-time analysis of periodic message streams under fixed-priority
(identifier-based) arbitration, plus deadline-monotonic identifier
assignment.

The analysis is the classic one for CAN: a frame of stream ``i``
suffers

* **blocking** ``B_i``: one maximal lower-priority frame already on the
  wire (arbitration is non-preemptive);
* **interference**: higher-priority frames released during its
  queueing delay; the queueing fixed point is
  ``w = B_i + sum_{j in hp(i)} ceil((w + tau) / P_j) * C_j``
  with ``tau`` one bit time, and the response time ``R_i = w + C_i``.

The stream set is schedulable when ``R_i <= D_i`` for every stream.
Deadline-monotonic identifier assignment (shortest deadline = lowest
identifier = highest arbitration priority) is the optimal fixed
assignment for this model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.net.fieldbus import Fieldbus

__all__ = [
    "MessageStream",
    "assign_deadline_monotonic_ids",
    "bus_response_times",
    "bus_schedulable",
    "bus_utilization",
]

_MAX_ITERATIONS = 256


@dataclass(frozen=True)
class MessageStream:
    """One periodic frame stream on the bus.

    Attributes:
        name: Stream identifier for reporting.
        can_id: Arbitration identifier (lower = higher priority).
        size: Payload bytes per frame (0..8).
        period: Minimum inter-frame interval at the sender (ns).
        deadline: Relative deadline of each frame (ns); defaults to the
            period.
    """

    name: str
    can_id: int
    size: int
    period: int
    deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError(f"stream {self.name}: period must be positive")
        if self.deadline is None:
            object.__setattr__(self, "deadline", self.period)
        if self.deadline <= 0:
            raise ValueError(f"stream {self.name}: deadline must be positive")


def assign_deadline_monotonic_ids(
    streams: Sequence[MessageStream], base_id: int = 0x10
) -> List[MessageStream]:
    """Re-assign identifiers deadline-monotonically.

    The shortest-deadline stream receives the lowest identifier (the
    highest arbitration priority) -- the optimal fixed-priority
    assignment for non-preemptive buses with this analysis.
    """
    ordered = sorted(streams, key=lambda s: (s.deadline, s.name))
    return [
        replace(stream, can_id=base_id + index)
        for index, stream in enumerate(ordered)
    ]


def bus_utilization(streams: Sequence[MessageStream], bus: Fieldbus) -> float:
    """Fraction of the wire consumed by the streams."""
    return sum(bus.frame_time_ns(s.size) / s.period for s in streams)


def bus_response_times(
    streams: Sequence[MessageStream],
    bus: Fieldbus,
    max_retransmits: int = 0,
) -> Dict[str, Optional[int]]:
    """Worst-case frame response time per stream (ns).

    ``None`` marks a stream whose fixed point exceeds its deadline
    (unschedulable).

    ``max_retransmits`` extends the analysis with the classic CAN
    error term: with up to k automatic retransmissions per frame, the
    worst case re-sends the frame k more times, each preceded by an
    error flag + delimiter on the wire, adding
    ``k * (error_frame_time + C_i)`` to the response (the bounded
    retransmission of :meth:`Fieldbus.enable_dependability`).
    """
    if max_retransmits < 0:
        raise ValueError("max_retransmits must be non-negative")
    bit_time = 1_000_000_000 // bus.bit_rate_bps
    error_term_base = max_retransmits * bus.error_frame_time_ns
    ordered = sorted(streams, key=lambda s: (s.can_id, s.name))
    results: Dict[str, Optional[int]] = {}
    for index, stream in enumerate(ordered):
        own_time = bus.frame_time_ns(stream.size)
        error_term = error_term_base + max_retransmits * own_time
        higher = ordered[:index]
        lower = ordered[index + 1 :]
        blocking = max(
            (bus.frame_time_ns(s.size) for s in lower), default=0
        )
        queueing = blocking
        response: Optional[int] = None
        for _ in range(_MAX_ITERATIONS):
            interference = sum(
                -(-(queueing + bit_time) // s.period) * bus.frame_time_ns(s.size)
                for s in higher
            )
            nxt = blocking + interference
            if nxt == queueing:
                response = queueing + own_time + error_term
                break
            if nxt + own_time + error_term > stream.deadline:
                break
            queueing = nxt
        if response is not None and response > stream.deadline:
            response = None
        results[stream.name] = response
    return results


def bus_schedulable(
    streams: Sequence[MessageStream],
    bus: Fieldbus,
    max_retransmits: int = 0,
) -> bool:
    """True when every stream meets its deadline on ``bus``."""
    if bus_utilization(streams, bus) > 1.0:
        return False
    return all(
        r is not None
        for r in bus_response_times(
            streams, bus, max_retransmits=max_retransmits
        ).values()
    )
