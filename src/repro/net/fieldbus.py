"""The shared fieldbus medium: priority arbitration over 1-2 Mbit/s.

Models the CAN-style bus of the paper's distributed targets: a single
broadcast medium; when the bus frees, all nodes with pending frames
arbitrate and the lowest identifier wins; a frame of b bits occupies
the bus for ``b / bit_rate`` seconds; every node hears every frame
(receivers filter by acceptance set).

The bus is simulated *between* cluster quanta (see
:mod:`repro.net.cluster`): transmit requests are stamped with the
sender's local virtual time, and :meth:`Fieldbus.process` replays
arbitration up to a horizon, producing `(delivery_time, frame)` pairs.
Because a frame needs at least one frame-time on the wire, deliveries
always land at or after the next quantum boundary, which is exactly
the lookahead that makes the conservative node synchronization sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.net.frame import Frame, frame_bits

__all__ = ["Fieldbus", "TransmitRequest", "Delivery"]

NS_PER_S = 1_000_000_000


@dataclass(frozen=True)
class TransmitRequest:
    """A frame queued for transmission at the sender's local time."""

    time: int
    frame: Frame
    sequence: int


@dataclass(frozen=True)
class Delivery:
    """A frame fully received by every node at ``time``."""

    time: int
    frame: Frame


class Fieldbus:
    """A single shared bus with priority (lowest-id-first) arbitration."""

    def __init__(self, bit_rate_bps: int = 1_000_000):
        if bit_rate_bps <= 0:
            raise ValueError("bit rate must be positive")
        self.bit_rate_bps = bit_rate_bps
        self._pending: List[TransmitRequest] = []
        self._sequence = 0
        #: Virtual time at which the bus next becomes idle.
        self.busy_until = 0
        #: Fault hook (set by ``FaultInjector.install``): called with
        #: ``(start_time, frame)`` for every frame that wins
        #: arbitration; returns ``"ok"``, ``"drop"`` (the frame is lost
        #: on the wire), or ``"corrupt"`` (delivered with a bad CRC).
        self.fault_hook: Optional[Callable[[int, Frame], str]] = None
        # statistics
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.bits_carried = 0
        self.total_arbitration_wait_ns = 0

    def frame_time_ns(self, size_bytes: int = 8) -> int:
        """Wire time of one frame with the given payload size."""
        return frame_bits(size_bytes) * NS_PER_S // self.bit_rate_bps

    @property
    def min_frame_time_ns(self) -> int:
        """Wire time of the smallest (0-byte) frame -- the cluster's
        synchronization lookahead."""
        return self.frame_time_ns(0)

    def queue(self, time: int, frame: Frame) -> None:
        """Register a transmit request stamped with the sender's time."""
        self._sequence += 1
        self._pending.append(TransmitRequest(time, frame, self._sequence))

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def process(self, horizon: int) -> List[Delivery]:
        """Arbitrate and transmit everything that *starts* by ``horizon``.

        Returns deliveries in completion order.  Requests that cannot
        start by the horizon stay queued for the next round.
        """
        deliveries: List[Delivery] = []
        while self._pending:
            # Earliest instant at which some request is available.
            earliest = min(r.time for r in self._pending)
            start = max(earliest, self.busy_until)
            if start > horizon:
                break
            # CAN arbitration: among requests present at `start`, the
            # lowest identifier wins (sequence breaks ties determinist-
            # ically for same-id frames from different nodes).
            contenders = [r for r in self._pending if r.time <= start]
            winner = min(contenders, key=lambda r: (r.frame.can_id, r.sequence))
            self._pending.remove(winner)
            duration = self.frame_time_ns(winner.frame.size)
            completion = start + duration
            self.busy_until = completion
            self.bits_carried += winner.frame.bits
            self.total_arbitration_wait_ns += start - winner.time
            frame = winner.frame
            verdict = self.fault_hook(start, frame) if self.fault_hook else "ok"
            if verdict == "drop":
                # The frame occupied the wire but no node hears it.
                self.frames_dropped += 1
                continue
            if verdict == "corrupt":
                self.frames_corrupted += 1
                frame = replace(frame, corrupted=True)
            self.frames_delivered += 1
            deliveries.append(Delivery(completion, frame))
        return deliveries

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` the bus spent carrying bits."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.bits_carried * NS_PER_S / self.bit_rate_bps / elapsed_ns)
