"""The shared fieldbus medium: priority arbitration over 1-2 Mbit/s.

Models the CAN-style bus of the paper's distributed targets: a single
broadcast medium; when the bus frees, all nodes with pending frames
arbitrate and the lowest identifier wins; a frame of b bits occupies
the bus for ``b / bit_rate`` seconds; every node hears every frame
(receivers filter by acceptance set).

The bus is simulated *between* cluster quanta (see
:mod:`repro.net.cluster`): transmit requests are stamped with the
sender's local virtual time, and :meth:`Fieldbus.process` replays
arbitration up to a horizon, producing `(delivery_time, frame)` pairs.
Because a frame needs at least one frame-time on the wire, deliveries
always land at or after the next quantum boundary, which is exactly
the lookahead that makes the conservative node synchronization sound.

Dependability (opt-in via :meth:`Fieldbus.enable_dependability`):
real CAN controllers retransmit automatically on error and confine
failing nodes through TEC/REC error counters (see
:mod:`repro.net.errorstate`).  When armed, every ``fault_hook``
verdict feeds the sender's error state machine, failed frames burn an
error frame's wire time and re-enter arbitration (bounded by
``max_retransmits``, with the error-passive suspend-transmission
backoff), and bus-off senders have their traffic deferred to the
deterministic recovery instant.  With the layer disarmed (the
default) every code path is identical to the seed implementation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from heapq import heappop, heappush
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.net.errorstate import (
    BUS_OFF,
    ERROR_PASSIVE,
    SUSPEND_TRANSMISSION_BITS,
    CanErrorState,
)
from repro.net.frame import ERROR_FRAME_BITS, Frame, frame_bits

__all__ = ["Fieldbus", "TransmitRequest", "Delivery", "BusEvent", "VERDICTS"]

NS_PER_S = 1_000_000_000

#: The verdicts a ``fault_hook`` may return.
VERDICTS = ("ok", "drop", "corrupt")


@dataclass(frozen=True)
class TransmitRequest:
    """A frame queued for transmission at the sender's local time."""

    time: int
    frame: Frame
    sequence: int
    #: Retransmission attempts already consumed (0 = first try).
    attempts: int = 0
    #: The sender's original transmit stamp.  ``time`` moves on
    #: retransmission / bus-off deferral; ``origin`` does not, so
    #: latency accounting can always reach back to the application's
    #: send instant.  ``-1`` means "same as time" (the default for
    #: requests built directly).
    origin: int = -1

    @property
    def origin_time(self) -> int:
        """The original send instant (``origin``, or ``time``)."""
        return self.origin if self.origin >= 0 else self.time


@dataclass(frozen=True)
class Delivery:
    """A frame fully received by every node at ``time``."""

    time: int
    frame: Frame


class BusEvent(NamedTuple):
    """One entry of the bus activity log (``Fieldbus.enable_trace``).

    ``kind``:

    * ``"tx"`` -- a transmission occupied the wire ``[start, end)``
      (``verdict`` says how it ended; ``attempts > 0`` marks a
      retransmission attempt);
    * ``"error-frame"`` -- an error flag + delimiter occupied the wire
      ``[start, end)`` after a failed transmission;
    * ``"retransmit"`` -- the failed frame re-entered arbitration,
      becoming available at ``start`` (``attempts`` = the retry count
      just consumed);
    * ``"retransmit-exhausted"`` -- the retry bound was hit and the
      frame was abandoned at ``start``;
    * ``"bus-off-defer"`` -- the sender was bus-off; its traffic was
      deferred to the recovery instant ``end``.

    ``queued`` is the sender's original transmit stamp (the request's
    availability time for the *current* attempt), so end-to-end
    latency chains start from the application's send instant.
    """

    kind: str
    start: int
    end: int
    can_id: int
    sender: Optional[str]
    flow: Optional[int]
    attempts: int
    verdict: str
    queued: int


class Fieldbus:
    """A single shared bus with priority (lowest-id-first) arbitration."""

    def __init__(self, bit_rate_bps: int = 1_000_000):
        if bit_rate_bps <= 0:
            raise ValueError("bit rate must be positive")
        self.bit_rate_bps = bit_rate_bps
        self.bit_time_ns = NS_PER_S // bit_rate_bps
        # Arbitration state: requests not yet available at the bus
        # (keyed by availability time) and requests already contending
        # (keyed by CAN priority).  ``sequence`` breaks every tie
        # deterministically.
        self._future: List[Tuple[int, int, TransmitRequest]] = []
        self._ready: List[Tuple[int, int, TransmitRequest]] = []
        self._sequence = 0
        #: Virtual time at which the bus next becomes idle.
        self.busy_until = 0
        #: Fault hook (set by ``FaultInjector.install``): called with
        #: ``(start_time, frame)`` for every frame that wins
        #: arbitration; returns ``"ok"``, ``"drop"`` (the frame is lost
        #: on the wire), or ``"corrupt"`` (delivered with a bad CRC).
        self.fault_hook: Optional[Callable[[int, Frame], str]] = None
        # dependability layer (disarmed by default)
        self.max_retransmits = 0
        #: Per-node error state machines; ``None`` until
        #: :meth:`enable_dependability` arms the layer.
        self.error_states: Optional[Dict[str, CanErrorState]] = None
        #: Bus activity log (``None`` = disabled).  Armed by
        #: :meth:`enable_trace`; consumed post-hoc by the cluster
        #: trace exporter.  Appending to it never influences
        #: arbitration, so traces stay byte-identical with the log on.
        self.bus_log: Optional[List[BusEvent]] = None
        # statistics
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.frames_retransmitted = 0
        self.retransmits_exhausted = 0
        self.frames_deferred_bus_off = 0
        self.error_frames = 0
        self.bits_carried = 0
        self.total_arbitration_wait_ns = 0

    def frame_time_ns(self, size_bytes: int = 8) -> int:
        """Wire time of one frame with the given payload size."""
        return frame_bits(size_bytes) * NS_PER_S // self.bit_rate_bps

    @property
    def min_frame_time_ns(self) -> int:
        """Wire time of the smallest (0-byte) frame -- the cluster's
        synchronization lookahead."""
        return self.frame_time_ns(0)

    @property
    def error_frame_time_ns(self) -> int:
        """Wire time of one error flag + delimiter + intermission."""
        return ERROR_FRAME_BITS * NS_PER_S // self.bit_rate_bps

    # ------------------------------------------------------------------
    # dependability layer
    # ------------------------------------------------------------------
    def enable_dependability(self, max_retransmits: int = 8) -> "Fieldbus":
        """Arm error confinement and bounded automatic retransmission.

        ``max_retransmits`` bounds the retries *per frame* (0 keeps
        the error state machines ticking but never retries).  Returns
        the bus for chaining.
        """
        if max_retransmits < 0:
            raise ValueError("max_retransmits must be non-negative")
        self.max_retransmits = max_retransmits
        if self.error_states is None:
            self.error_states = {}
        return self

    @property
    def dependability_enabled(self) -> bool:
        return self.error_states is not None

    # ------------------------------------------------------------------
    # activity trace
    # ------------------------------------------------------------------
    def enable_trace(self) -> "Fieldbus":
        """Arm the bus activity log (see :class:`BusEvent`).

        Purely observational: the log records what arbitration decided
        but never feeds back into it.  Returns the bus for chaining.
        """
        if self.bus_log is None:
            self.bus_log = []
        return self

    def _log(self, event: BusEvent) -> None:
        if self.bus_log is not None:
            self.bus_log.append(event)

    def error_state(self, node: str) -> CanErrorState:
        """Get or create the error state machine of ``node``.

        Requires the dependability layer to be armed.
        """
        states = self.error_states
        if states is None:
            raise ValueError(
                "dependability layer is not armed (call enable_dependability)"
            )
        state = states.get(node)
        if state is None:
            state = states[node] = CanErrorState(node, self.bit_time_ns)
        return state

    # ------------------------------------------------------------------
    # transmit queue
    # ------------------------------------------------------------------
    def queue(self, time: int, frame: Frame) -> None:
        """Register a transmit request stamped with the sender's time.

        Stamps the frame with a stable flow id (its arbitration
        sequence number) unless the sender already assigned one.  The
        cluster merges transmissions into the bus in deterministic
        ``(time, node_index, seq)`` order in every sync mode, so flow
        ids are identical across lockstep/adaptive/parallel and any
        worker count.
        """
        self._sequence += 1
        if frame.flow is None:
            frame = replace(frame, flow=self._sequence)
        request = TransmitRequest(time, frame, self._sequence, origin=time)
        heappush(self._future, (time, self._sequence, request))

    @property
    def pending_count(self) -> int:
        return len(self._future) + len(self._ready)

    def next_event_time(self) -> Optional[int]:
        """Earliest instant at which the bus can start (or resume)
        transmitting, or ``None`` when nothing is queued.

        A conservative lower bound on the bus's next observable action:
        no delivery, error frame, or error-state transition can happen
        before the next transmission *starts*, and a start needs a
        request (``_ready``/``_future``) and a free bus
        (``busy_until``).  The cluster's adaptive synchronization skips
        quanta wholesale up to this instant: :meth:`process` calls on
        earlier horizons are provably no-ops (bus-off deferrals and
        suspend-transmission retries re-enter ``_future`` with their
        recovery instants as availability times, so they are covered).
        """
        if self._ready:
            return self.busy_until
        if self._future:
            available = self._future[0][0]
            busy = self.busy_until
            return available if available > busy else busy
        return None

    def process(self, horizon: int) -> List[Delivery]:
        """Arbitrate and transmit everything that *starts* by ``horizon``.

        Returns deliveries in completion order.  Requests that cannot
        start by the horizon stay queued for the next round.

        Arbitration is a pair of heaps: requests flow from ``_future``
        (keyed by availability time) into ``_ready`` (keyed by
        ``(can_id, sequence)``, i.e. CAN priority) as the bus clock
        passes their stamps, so each transmission costs O(log n)
        instead of the former O(n) min-scan + list.remove.  Delivery
        order is byte-identical to the reference implementation
        (verified by tests against the old algorithm).
        """
        deliveries: List[Delivery] = []
        future, ready = self._future, self._ready
        while future or ready:
            if ready:
                # Everything already contending became available at or
                # before a previous start <= busy_until, so the next
                # transmission starts as soon as the bus frees.
                start = self.busy_until
            else:
                start = max(future[0][0], self.busy_until)
            if start > horizon:
                break
            # CAN arbitration: among requests present at `start`, the
            # lowest identifier wins (sequence breaks ties determinist-
            # ically for same-id frames from different nodes).
            while future and future[0][0] <= start:
                _, seq, request = heappop(future)
                heappush(ready, (request.frame.can_id, seq, request))
            _, _, winner = heappop(ready)
            sender_state = self._sender_state(winner.frame.sender)
            if sender_state is not None:
                sender_state.maybe_recover(start)
                if sender_state.state == BUS_OFF:
                    # The controller is off the bus: its traffic waits
                    # for the deterministic recovery instant.
                    self.frames_deferred_bus_off += 1
                    deferred = replace(winner, time=sender_state.bus_off_until)
                    heappush(
                        future,
                        (deferred.time, deferred.sequence, deferred),
                    )
                    self._log(BusEvent(
                        "bus-off-defer",
                        start,
                        deferred.time,
                        winner.frame.can_id,
                        winner.frame.sender,
                        winner.frame.flow,
                        winner.attempts,
                        "deferred",
                        winner.origin_time,
                    ))
                    continue
            duration = self.frame_time_ns(winner.frame.size)
            completion = start + duration
            self.busy_until = completion
            self.bits_carried += winner.frame.bits
            self.total_arbitration_wait_ns += start - winner.time
            frame = winner.frame
            verdict = self.fault_hook(start, frame) if self.fault_hook else "ok"
            if verdict not in VERDICTS:
                raise ValueError(
                    f"fault_hook returned {verdict!r}; expected one of "
                    f"{VERDICTS}"
                )
            self._log(BusEvent(
                "tx",
                start,
                completion,
                frame.can_id,
                frame.sender,
                frame.flow,
                winner.attempts,
                verdict,
                winner.origin_time,
            ))
            if verdict == "drop":
                # The frame occupied the wire but no node hears it.
                self.frames_dropped += 1
                self._on_tx_error(winner, completion, sender_state)
                continue
            if verdict == "corrupt":
                self.frames_corrupted += 1
                frame = replace(frame, corrupted=True)
                self._on_tx_error(winner, completion, sender_state)
            elif sender_state is not None:
                sender_state.on_tx_success(completion)
            self.frames_delivered += 1
            deliveries.append(Delivery(completion, frame))
        return deliveries

    def _sender_state(self, sender: Optional[str]) -> Optional[CanErrorState]:
        if self.error_states is None or sender is None:
            return None
        return self.error_state(sender)

    def _on_tx_error(
        self,
        request: TransmitRequest,
        completion: int,
        sender_state: Optional[CanErrorState],
    ) -> None:
        """Account a failed transmission: error frame, TEC, retry."""
        frame = request.frame
        if self.error_states is not None:
            # Signalling the error occupies the wire too.
            self.error_frames += 1
            self.bits_carried += ERROR_FRAME_BITS
            self.busy_until = completion + self.error_frame_time_ns
            self._log(BusEvent(
                "error-frame",
                completion,
                self.busy_until,
                frame.can_id,
                frame.sender,
                frame.flow,
                request.attempts,
                "error",
                request.origin_time,
            ))
        if sender_state is not None:
            sender_state.on_tx_error(completion)
        if self.max_retransmits <= 0:
            return
        if request.attempts >= self.max_retransmits:
            self.retransmits_exhausted += 1
            self._log(BusEvent(
                "retransmit-exhausted",
                self.busy_until,
                self.busy_until,
                frame.can_id,
                frame.sender,
                frame.flow,
                request.attempts,
                "abandoned",
                request.origin_time,
            ))
            return
        retry = self.busy_until
        if sender_state is not None and sender_state.state == ERROR_PASSIVE:
            # Suspend transmission: an error-passive transmitter yields
            # 8 bit times before competing again, so healthy senders
            # overtake it in arbitration.
            retry += SUSPEND_TRANSMISSION_BITS * self.bit_time_ns
        self.frames_retransmitted += 1
        self._sequence += 1
        retransmit = replace(
            request,
            time=retry,
            sequence=self._sequence,
            attempts=request.attempts + 1,
        )
        heappush(self._future, (retry, retransmit.sequence, retransmit))
        self._log(BusEvent(
            "retransmit",
            retry,
            retry,
            frame.can_id,
            frame.sender,
            frame.flow,
            retransmit.attempts,
            "retry",
            request.origin_time,
        ))

    def utilization(self, elapsed_ns: int) -> float:
        """Fraction of ``elapsed_ns`` the bus spent carrying bits."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self.bits_carried * NS_PER_S / self.bit_rate_bps / elapsed_ns)
