"""Distributed substrate: fieldbus, node interfaces, clusters.

The paper's distributed targets are "5-10 nodes interconnected by a
low-speed (1-2 Mbit/s) fieldbus network (such as automotive and
avionics control systems)" (Section 2).  Inter-node protocols proper
are out of the paper's scope (footnote 1), but the *substrate* --
network device drivers under user-level driver threads, Figure 1 --
is part of the kernel's job and is built here.
"""

from repro.net.analysis import (
    MessageStream,
    assign_deadline_monotonic_ids,
    bus_response_times,
    bus_schedulable,
    bus_utilization,
)
from repro.net.cluster import SYNC_MODES, Cluster
from repro.net.errorstate import (
    BUS_OFF,
    ERROR_ACTIVE,
    ERROR_PASSIVE,
    CanErrorState,
)
from repro.net.fieldbus import VERDICTS, Delivery, Fieldbus, TransmitRequest
from repro.net.frame import ERROR_FRAME_BITS, Frame, frame_bits
from repro.net.global_state import GlobalStateChannel, ReplicaStatus
from repro.net.membership import HEARTBEAT_CAN_ID, HeartbeatMonitor
from repro.net.node import NetInterface, net_send

__all__ = [
    "BUS_OFF",
    "Cluster",
    "CanErrorState",
    "Delivery",
    "ERROR_ACTIVE",
    "ERROR_FRAME_BITS",
    "ERROR_PASSIVE",
    "Fieldbus",
    "Frame",
    "GlobalStateChannel",
    "HEARTBEAT_CAN_ID",
    "HeartbeatMonitor",
    "MessageStream",
    "NetInterface",
    "ReplicaStatus",
    "SYNC_MODES",
    "TransmitRequest",
    "VERDICTS",
    "assign_deadline_monotonic_ids",
    "bus_response_times",
    "bus_schedulable",
    "bus_utilization",
    "frame_bits",
    "net_send",
]
