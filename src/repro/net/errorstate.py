"""CAN error confinement: TEC/REC counters and the three-state machine.

Real CAN controllers implement *error confinement* (ISO 11898-1
section 12): every node keeps a transmit error counter (TEC) and a
receive error counter (REC).  A failed transmission (no ACK, bit
error, stuffed-bit error) adds 8 to the TEC; a successful one
subtracts 1.  A reception error (CRC failure, form error) adds 1 to
the REC; a clean reception subtracts 1.  The counters drive a
three-state machine:

* **error-active** (TEC < 128 and REC < 128): normal operation, the
  node signals errors with dominant error flags;
* **error-passive** (TEC >= 128 or REC >= 128): the node may still
  transmit but must wait an extra *suspend transmission* time (8 bit
  times) after being a transmitter before competing again -- a
  misbehaving node backs off so healthy traffic gets through;
* **bus-off** (TEC >= 256): the controller disconnects.  It may
  rejoin after observing 128 occurrences of 11 consecutive recessive
  bits (i.e. 128 * 11 bit times of bus idle/activity), after which
  both counters reset and the node is error-active again.

The simulation reproduces this deterministically in virtual time: the
bus feeds transmit verdicts (from ``Fieldbus.fault_hook``) into the
sender's :class:`CanErrorState`, receiving interfaces feed CRC
results into their own, and bus-off recovery lands at the exact
virtual instant ``bus_off_until`` with no randomness anywhere.
"""

from __future__ import annotations

from typing import List, Tuple

__all__ = [
    "CanErrorState",
    "ERROR_ACTIVE",
    "ERROR_PASSIVE",
    "BUS_OFF",
    "TX_ERROR_INCREMENT",
    "RX_ERROR_INCREMENT",
    "ERROR_PASSIVE_THRESHOLD",
    "BUS_OFF_THRESHOLD",
    "BUS_OFF_RECOVERY_BITS",
    "SUSPEND_TRANSMISSION_BITS",
]

ERROR_ACTIVE = "error-active"
ERROR_PASSIVE = "error-passive"
BUS_OFF = "bus-off"

#: Numeric severity used by metrics gauges (export-friendly).
STATE_SEVERITY = {ERROR_ACTIVE: 0, ERROR_PASSIVE: 1, BUS_OFF: 2}

#: TEC increment on a failed transmission (CAN: +8).
TX_ERROR_INCREMENT = 8
#: REC increment on a reception error (CAN: +1).
RX_ERROR_INCREMENT = 1
#: Counter decrement on success (CAN: -1, floored at 0).
ERROR_DECREMENT = 1
#: Either counter at or above this makes the node error-passive.
ERROR_PASSIVE_THRESHOLD = 128
#: TEC at or above this takes the node off the bus.
BUS_OFF_THRESHOLD = 256
#: Bus-off recovery: 128 occurrences of 11 recessive bits.
BUS_OFF_RECOVERY_BITS = 128 * 11
#: Suspend-transmission penalty of an error-passive transmitter.
SUSPEND_TRANSMISSION_BITS = 8


class CanErrorState:
    """One node's error-confinement state (see module docstring).

    All transitions are logged with their virtual timestamps in
    :attr:`transitions`, which doubles as the deterministic "error
    trace" the chaos tests fingerprint.
    """

    __slots__ = (
        "node", "bit_time_ns", "tec", "rec", "state", "bus_off_until",
        "bus_off_events", "tx_errors", "rx_errors", "transitions",
    )

    def __init__(self, node: str, bit_time_ns: int):
        if bit_time_ns <= 0:
            raise ValueError("bit time must be positive")
        self.node = node
        self.bit_time_ns = bit_time_ns
        self.tec = 0
        self.rec = 0
        self.state = ERROR_ACTIVE
        #: While bus-off: the virtual instant the controller rejoins.
        self.bus_off_until = 0
        self.bus_off_events = 0
        self.tx_errors = 0
        self.rx_errors = 0
        #: ``(time, state)`` log of every transition, in time order.
        self.transitions: List[Tuple[int, str]] = []

    # ------------------------------------------------------------------
    # events fed by the bus (transmit side) and interfaces (receive side)
    # ------------------------------------------------------------------
    def on_tx_error(self, now: int) -> None:
        """The node's transmission failed on the wire (no clean ACK)."""
        self.tx_errors += 1
        self.tec += TX_ERROR_INCREMENT
        self._update(now)

    def on_tx_success(self, now: int) -> None:
        """The node's transmission completed cleanly."""
        if self.tec > 0:
            self.tec = max(0, self.tec - ERROR_DECREMENT)
            self._update(now)

    def on_rx_error(self, now: int) -> None:
        """The node's controller saw a frame fail its CRC check."""
        self.rx_errors += 1
        self.rec += RX_ERROR_INCREMENT
        self._update(now)

    def on_rx_success(self, now: int) -> None:
        """The node's controller received a clean frame."""
        if self.rec > 0:
            self.rec = max(0, self.rec - ERROR_DECREMENT)
            self._update(now)

    def maybe_recover(self, now: int) -> bool:
        """Leave bus-off once the recovery sequence has elapsed.

        Returns True when a recovery happened at this call.  Both
        counters reset, per the standard.
        """
        if self.state == BUS_OFF and now >= self.bus_off_until:
            self.tec = 0
            self.rec = 0
            self._transition(now, ERROR_ACTIVE)
            return True
        return False

    # ------------------------------------------------------------------
    # state machine
    # ------------------------------------------------------------------
    def _update(self, now: int) -> None:
        if self.state == BUS_OFF:
            # Only maybe_recover() leaves bus-off.
            return
        if self.tec >= BUS_OFF_THRESHOLD:
            self.bus_off_events += 1
            self.bus_off_until = now + BUS_OFF_RECOVERY_BITS * self.bit_time_ns
            self._transition(now, BUS_OFF)
        elif (
            self.tec >= ERROR_PASSIVE_THRESHOLD
            or self.rec >= ERROR_PASSIVE_THRESHOLD
        ):
            if self.state != ERROR_PASSIVE:
                self._transition(now, ERROR_PASSIVE)
        elif self.state != ERROR_ACTIVE:
            self._transition(now, ERROR_ACTIVE)

    def _transition(self, now: int, state: str) -> None:
        self.state = state
        self.transitions.append((now, state))

    @property
    def error_passive(self) -> bool:
        return self.state == ERROR_PASSIVE

    @property
    def bus_off(self) -> bool:
        return self.state == BUS_OFF

    @property
    def severity(self) -> int:
        """0 = error-active, 1 = error-passive, 2 = bus-off."""
        return STATE_SEVERITY[self.state]

    def __repr__(self) -> str:
        return (
            f"<CanErrorState {self.node}: {self.state} "
            f"tec={self.tec} rec={self.rec}>"
        )
