"""Multi-node clusters: 5-10 kernels sharing a fieldbus.

Each node runs its own :class:`~repro.kernel.kernel.Kernel` (its own
CPU and virtual clock); the cluster advances them through quantum
windows and simulates the bus in between.  The quantum equals the
smallest frame's wire time: since any frame needs at least that long
on the bus, a frame transmitted during quantum k can only be delivered
in quantum k+1 or later, so nodes never receive events in their local
past -- the classic conservative-synchronization lookahead argument.

Synchronization modes
---------------------

``sync="lockstep"`` steps every window unconditionally: O(horizon /
quantum * nodes) work regardless of how much actually happens -- the
reference implementation kept for differential testing.

``sync="adaptive"`` (the default) computes the cluster's **next
relevant instant** before each window -- the minimum over every
kernel's :meth:`~repro.kernel.kernel.Kernel.next_event_time` and the
bus's :meth:`~repro.net.fieldbus.Fieldbus.next_event_time` -- and,
when it falls beyond the next window boundary, jumps straight to the
window containing it.  The skipped windows provably contain no
activity: an idle kernel cannot act before its next pending event
(deliveries, releases, timers, and interrupts all live in its event
queue; a *busy* kernel reports "now" and inhibits the jump), and the
bus cannot produce a delivery, error frame, or state transition before
its next transmission start, so the skipped ``run_until``/``process``
calls were no-ops.  Jump targets stay on the lockstep window lattice
(``now + k * quantum``), so every window that *does* contain activity
is processed with exactly the lockstep boundaries; combined with the
trace's adjacent-segment merging this makes adaptive runs
**byte-identical** to lockstep -- same full-trace sha256 signatures,
same delivery order, same bus statistics (property-tested).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Iterable, List, Optional, Tuple

from repro.kernel.kernel import Kernel
from repro.net.fieldbus import Fieldbus
from repro.net.node import DEFAULT_RX_CAPACITY, NetInterface

__all__ = ["Cluster", "SYNC_MODES"]

#: Valid cluster synchronization modes.
SYNC_MODES = ("lockstep", "adaptive")


class Cluster:
    """A set of kernels joined by one fieldbus.

    Args:
        bus: The shared fieldbus (a fresh 1 Mbit/s one by default).
        sync: ``"adaptive"`` (default) skips provably silent quantum
            windows; ``"lockstep"`` steps every window -- the escape
            hatch for differential testing.  Both produce byte-identical
            traces.
    """

    def __init__(self, bus: Optional[Fieldbus] = None, sync: str = "adaptive"):
        if sync not in SYNC_MODES:
            raise ValueError(
                f"unknown sync mode {sync!r} (expected one of {SYNC_MODES})"
            )
        self.bus = bus if bus is not None else Fieldbus()
        self.sync = sync
        self.nodes: Dict[str, Kernel] = {}
        self.interfaces: Dict[str, NetInterface] = {}
        self._now = 0
        # statistics
        #: Quantum windows actually processed (kernels stepped + bus
        #: arbitrated).  Lockstep processes ceil(horizon / quantum) of
        #: them; adaptive only the ones containing activity.
        self.sync_rounds = 0
        #: Silent windows the adaptive mode jumped over.
        self.windows_skipped = 0
        #: Deliveries not scheduled because the receiver's acceptance
        #: filter could never match (the interface's ``frames_filtered``
        #: is bumped when the delivery instant passes instead of paying
        #: a kernel event + closure for a guaranteed no-op).
        self.deliveries_suppressed = 0
        # Suppressed deliveries whose delivery instant has not passed
        # yet: ``(delivery_time, interfaces_to_bump)``.  The lockstep
        # reference bumps ``frames_filtered`` inside the no-op
        # ``deliver`` event at delivery time; deferring the suppressed
        # bump the same way keeps the stats byte-identical at every
        # cluster boundary, including frames still in flight at t_end.
        self._deferred_filter_stats: List[Tuple[int, Tuple[NetInterface, ...]]] = []

    @property
    def now(self) -> int:
        """Global virtual time (all nodes are at this time between
        :meth:`run_until` calls)."""
        return self._now

    def add_node(
        self,
        name: str,
        kernel: Kernel,
        accept: Optional[Iterable[int]] = None,
        vector: int = 15,
        rx_capacity: Optional[int] = DEFAULT_RX_CAPACITY,
    ) -> NetInterface:
        """Attach a kernel to the bus; returns its network interface."""
        if name in self.nodes:
            raise ValueError(f"node {name} already exists")
        if kernel.now != self._now:
            raise ValueError(
                f"node {name} joins at local time {kernel.now}, cluster is at {self._now}"
            )
        interface = NetInterface(
            name, kernel, self.bus, accept=accept, vector=vector,
            rx_capacity=rx_capacity,
        )
        self.nodes[name] = kernel
        self.interfaces[name] = interface
        return interface

    def enable_dependability(self, max_retransmits: int = 8) -> "Cluster":
        """Arm the bus's error confinement + retransmission layer."""
        self.bus.enable_dependability(max_retransmits)
        return self

    def run_until(self, t_end: int) -> None:
        """Advance every node (and the bus) to ``t_end``."""
        if t_end < self._now:
            raise ValueError("cannot run into the past")
        if not self.nodes:
            self._now = t_end
            return
        quantum = self.bus.min_frame_time_ns
        if not quantum or quantum <= 0:
            # A zero (or undefined) minimum frame time gives the
            # conservative synchronization no lookahead: the window
            # loop would never make progress.
            raise ValueError(
                f"bus.min_frame_time_ns must be a positive lookahead "
                f"(got {quantum!r}); a bus whose smallest frame takes "
                "no wire time cannot bound conservative synchronization"
            )
        if self.sync == "adaptive":
            self._run_adaptive(t_end, quantum)
        else:
            self._run_lockstep(t_end, quantum)

    def _run_lockstep(self, t_end: int, quantum: int) -> None:
        """The reference loop: every window, every node, every time."""
        interfaces = list(self.interfaces.values())
        kernels = list(self.nodes.values())
        process = self.bus.process
        now = self._now
        while now < t_end:
            boundary = now + quantum
            if boundary > t_end:
                boundary = t_end
            self.sync_rounds += 1
            for kernel in kernels:
                # A node may have overshot the previous boundary while
                # charging kernel costs (kernel code is not preempted
                # by quantum edges); never ask it to run backwards.
                if kernel.clock.now < boundary:
                    kernel.run_until(boundary)
            # Bus work that *starts* by the boundary completes at
            # boundary + >= one frame time, i.e. in every node's local
            # future; deliveries are scheduled into the kernels now.
            deliveries = process(boundary)
            if deliveries:
                self._dispatch_deliveries(deliveries, interfaces, prefilter=False)
            self._now = now = boundary

    def _run_adaptive(self, t_end: int, quantum: int) -> None:
        """The event-driven loop: jump over provably silent windows.

        One pass per round computes each kernel's conservative
        next-activity bound (inlining the :meth:`Kernel.next_event_time`
        logic: this loop runs once per node per round and the call
        overhead is measurable).  The raw heap head is used without
        trimming cancelled entries -- a cancelled head's time is a lower
        bound on the true next event, so the worst case is processing a
        window lockstep would also have processed, never skipping an
        active one.  The same bounds then drive per-node laziness: a
        kernel with nothing due by the boundary would only idle-jump its
        clock, and its trace's adjacent-IDLE merging makes deferring
        that jump invisible, so it is left alone until it has actual
        work (the final boundary runs everyone, returning all clocks at
        ``t_end``).
        """
        interfaces = list(self.interfaces.values())
        kernels = list(self.nodes.values())
        n = len(kernels)
        next_times = [0] * n
        bus = self.bus
        process = bus.process
        bus_next = bus.next_event_time
        rounds = 0
        skipped = 0
        now = self._now
        try:
            while now < t_end:
                boundary = now + quantum
                earliest = None
                for i in range(n):
                    kernel = kernels[i]
                    if kernel.running is not None or kernel._need_resched:
                        t = kernel.clock.now
                    else:
                        heap = kernel.events._heap
                        t = heap[0][0] if heap else None
                    next_times[i] = t
                    if t is not None and (earliest is None or t < earliest):
                        earliest = t
                t = bus_next()
                if t is not None and (earliest is None or t < earliest):
                    earliest = t
                if earliest is None:
                    # Fully quiescent: no pending kernel events anywhere
                    # and nothing queued on the bus.  Nothing can happen
                    # before t_end.
                    boundary = t_end
                elif earliest > boundary:
                    # First possible activity lies in a later window:
                    # jump to that window's boundary.  Staying on the
                    # lockstep lattice keeps every *active* window's
                    # boundaries identical to lockstep's.
                    boundary = now + quantum * (
                        (earliest - now + quantum - 1) // quantum
                    )
                if boundary >= t_end:
                    boundary = t_end
                    for kernel in kernels:
                        if kernel.clock.now < boundary:
                            kernel.run_until(boundary)
                else:
                    for i in range(n):
                        kernel = kernels[i]
                        t = next_times[i]
                        if (
                            t is not None
                            and t <= boundary
                            and kernel.clock.now < boundary
                        ):
                            kernel.run_until(boundary)
                rounds += 1
                skipped += (boundary - now - 1) // quantum
                if self._deferred_filter_stats:
                    self._flush_filter_stats(boundary)
                deliveries = process(boundary)
                if deliveries:
                    self._dispatch_deliveries(deliveries, interfaces, prefilter=True)
                self._now = now = boundary
        finally:
            self.sync_rounds += rounds
            self.windows_skipped += skipped

    def _dispatch_deliveries(self, deliveries, interfaces, prefilter: bool) -> None:
        """Schedule completed bus deliveries into the receiving kernels.

        With ``prefilter`` (the adaptive mode's delivery batching) each
        delivery is routed only to interfaces that can actually consume
        it: the sender never hears its own frame (``deliver`` returns
        immediately, touching nothing), and -- while the dependability
        layer is disarmed -- a receiver whose acceptance filter rejects
        the identifier gets its ``frames_filtered`` bumped here instead
        of paying a scheduled kernel event plus a closure for a
        guaranteed no-op ``deliver`` call.  Corrupted frames always ship
        (the CRC check runs *before* the acceptance filter and must
        count at every receiver), and with error confinement armed
        filtered frames ship too -- ``deliver`` feeds the receive error
        counters before filtering, exactly like a real CAN controller.
        Without ``prefilter`` (the lockstep reference) every delivery is
        scheduled into every node, the seed behaviour the differential
        tests compare against.
        """
        suppressed = 0
        error_states = self.bus.error_states
        for delivery in deliveries:
            frame = delivery.frame
            time = delivery.time
            sender = frame.sender
            can_id = frame.can_id
            route = prefilter and error_states is None and not frame.corrupted
            label = f"net-delivery:{can_id:#x}"
            filtered = None
            for interface in interfaces:
                if prefilter and sender == interface.name:
                    continue
                if route:
                    accept = interface.accept
                    if accept is not None and can_id not in accept:
                        if filtered is None:
                            filtered = [interface]
                        else:
                            filtered.append(interface)
                        suppressed += 1
                        continue
                kernel = interface.kernel
                kernel_now = kernel.clock.now
                kernel.events.schedule(
                    time if time > kernel_now else kernel_now,
                    partial(interface.deliver, frame),
                    label,
                )
            if filtered is not None:
                # ``frames_filtered`` moves when the frame would have
                # been heard, not when the bus completed it -- exactly
                # like the reference's no-op deliver events.
                self._deferred_filter_stats.append((time, tuple(filtered)))
        self.deliveries_suppressed += suppressed

    def _flush_filter_stats(self, up_to: int) -> None:
        """Apply suppressed-delivery stats whose instant has passed."""
        keep = []
        for time, filtered in self._deferred_filter_stats:
            if time <= up_to:
                for interface in filtered:
                    interface.frames_filtered += 1
            else:
                keep.append((time, filtered))
        self._deferred_filter_stats = keep

    def run_for(self, duration: int) -> None:
        """Advance by ``duration`` ns of global time."""
        self.run_until(self._now + duration)

    def total_deadline_violations(self) -> int:
        """Deadline violations across every node."""
        return sum(
            len(k.trace.deadline_violations(k.now)) for k in self.nodes.values()
        )
