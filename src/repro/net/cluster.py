"""Multi-node clusters: 5-10 kernels sharing a fieldbus.

Each node runs its own :class:`~repro.kernel.kernel.Kernel` (its own
CPU and virtual clock); the cluster advances them through quantum
windows and simulates the bus in between.  The quantum equals the
smallest frame's wire time: since any frame needs at least that long
on the bus, a frame transmitted during quantum k can only be delivered
in quantum k+1 or later, so nodes never receive events in their local
past -- the classic conservative-synchronization lookahead argument.

Synchronization modes
---------------------

``sync="lockstep"`` steps every window unconditionally: O(horizon /
quantum * nodes) work regardless of how much actually happens -- the
reference implementation kept for differential testing.

``sync="adaptive"`` (the default) computes the cluster's **next
relevant instant** before each window -- the minimum over every
kernel's :meth:`~repro.kernel.kernel.Kernel.next_event_time` and the
bus's :meth:`~repro.net.fieldbus.Fieldbus.next_event_time` -- and,
when it falls beyond the next window boundary, jumps straight to the
window containing it.  The skipped windows provably contain no
activity: an idle kernel cannot act before its next pending event
(deliveries, releases, timers, and interrupts all live in its event
queue; a *busy* kernel reports "now" and inhibits the jump), and the
bus cannot produce a delivery, error frame, or state transition before
its next transmission start, so the skipped ``run_until``/``process``
calls were no-ops.  Jump targets stay on the lockstep window lattice
(``now + k * quantum``), so every window that *does* contain activity
is processed with exactly the lockstep boundaries; combined with the
trace's adjacent-segment merging this makes adaptive runs
**byte-identical** to lockstep -- same full-trace sha256 signatures,
same delivery order, same bus statistics (property-tested).

``sync="parallel"`` exploits what the conservative argument already
proves: within one window the kernels are completely independent --
the only cross-node interactions are bus frames, and those can only
land in a *later* window.  The cluster therefore shards its kernels
across persistent forked worker processes
(:class:`~repro.perf.pool.WorkerPool`); each barrier round the parent
broadcasts the next boundary (computed with the adaptive rule from the
workers' reported bounds), the workers run their kernels through the
window concurrently, and all cross-node effects come back as
serializable per-window logs.  Falls back to serial adaptive when
``fork`` is unavailable or ``REPRO_CLUSTER_WORKERS=0``.

Effect logs and the deterministic merge
---------------------------------------

Cross-kernel side effects never happen inline, in *any* mode.  A
node's frame transmissions (:meth:`NetInterface.transmit`) and
membership transitions append to a per-node **effect log**; at each
window barrier the cluster merges all logs sorted by ``(time,
node_index, seq)`` -- ``seq`` being the append position within one
node's log -- and only then applies them (transmissions are queued on
the bus in merged order, which fixes the bus's arbitration
tie-breaking sequence numbers).  Because serial and parallel modes run
the *same* merge at the *same* barriers over the *same* per-node logs,
full-record traces, delivery timelines, metrics, and bus statistics
are byte-identical across ``lockstep``/``adaptive``/``parallel`` and
across any worker count -- by construction, not by luck.
"""

from __future__ import annotations

import os
from functools import partial
from operator import itemgetter
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.kernel.kernel import Kernel
from repro.net.fieldbus import Fieldbus
from repro.net.node import DEFAULT_RX_CAPACITY, NetInterface
from repro.perf.pool import WorkerError, WorkerPool, pool_available

__all__ = [
    "Cluster",
    "SYNC_MODES",
    "CLUSTER_WORKERS_ENV",
    "resolve_cluster_workers",
]

#: Valid cluster synchronization modes.
SYNC_MODES = ("lockstep", "adaptive", "parallel")

#: Environment knob for ``sync="parallel"``: worker process count.
#: ``0`` disables the pool entirely (graceful serial fallback).
CLUSTER_WORKERS_ENV = "REPRO_CLUSTER_WORKERS"

#: Default worker count when neither the constructor nor the
#: environment asks for a specific one.
DEFAULT_PARALLEL_WORKERS = 4

_EFFECT_ORDER = itemgetter(0, 1, 2)


def resolve_cluster_workers(requested: Optional[int] = None) -> int:
    """Concrete worker count for a parallel cluster.

    ``None`` falls back to ``REPRO_CLUSTER_WORKERS``, then to
    :data:`DEFAULT_PARALLEL_WORKERS`.  ``0`` means "no pool": the
    cluster runs the serial adaptive loop instead.
    """
    if requested is None:
        raw = os.environ.get(CLUSTER_WORKERS_ENV, "")
        requested = int(raw) if raw else DEFAULT_PARALLEL_WORKERS
    if requested < 0:
        raise ValueError(f"workers must be non-negative (got {requested})")
    return requested


# ----------------------------------------------------------------------
# Module-level query functions (picklable by reference, so the parallel
# mode can evaluate them inside the worker that owns the node's state;
# the serial modes call them directly).
# ----------------------------------------------------------------------
def _query_trace_signature(cluster: "Cluster", node: str,
                           include_segments: bool) -> str:
    return cluster.nodes[node].trace.signature(
        include_segments=include_segments
    )


def _query_interface_stats(cluster: "Cluster", node: str) -> Dict[str, int]:
    iface = cluster.interfaces[node]
    return {
        "frames_sent": iface.frames_sent,
        "frames_received": iface.frames_received,
        "frames_filtered": iface.frames_filtered,
        "frames_crc_dropped": iface.frames_crc_dropped,
        "rx_overflowed": iface.rx_overflowed,
    }


def _query_rx_timeline(cluster: "Cluster", node: str) -> list:
    return list(getattr(cluster.interfaces[node], "rx_timeline", ()))


def _query_events_popped(cluster: "Cluster", node: str) -> int:
    return cluster.nodes[node].events_popped


def _query_deadline_violations(cluster: "Cluster", node: str) -> int:
    kernel = cluster.nodes[node]
    return len(kernel.trace.deadline_violations(kernel.now))


def _query_trace(cluster: "Cluster", node: str):
    # The Trace is plain data (segments/jobs/events), so shipping it
    # across the worker pipe is a straight pickle.
    return cluster.nodes[node].trace


def _query_collector(cluster: "Cluster", node: str):
    # ObsCollector.__getstate__ drops the kernel reference, so the
    # parent receives the observed records, not live kernel state.
    return cluster.nodes[node].obs


def _query_rx_log(cluster: "Cluster", node: str):
    log = cluster.interfaces[node].rx_log
    return list(log) if log is not None else None


def _query_node_registry(cluster: "Cluster", node: str):
    # Built where the kernel lives, so trace-derived completion stats
    # are present whether the node runs in the parent or in a worker.
    obs = cluster.nodes[node].obs
    return obs.as_registry() if obs is not None else None


class Cluster:
    """A set of kernels joined by one fieldbus.

    Args:
        bus: The shared fieldbus (a fresh 1 Mbit/s one by default).
        sync: ``"adaptive"`` (default) skips provably silent quantum
            windows; ``"parallel"`` additionally runs the kernels in
            forked worker processes; ``"lockstep"`` steps every window
            -- the escape hatch for differential testing.  All three
            produce byte-identical traces.
        workers: Worker processes for ``sync="parallel"`` (``None``
            defers to ``REPRO_CLUSTER_WORKERS`` / the default; ``0``
            forces the serial fallback).  Ignored by serial modes.
    """

    def __init__(
        self,
        bus: Optional[Fieldbus] = None,
        sync: str = "adaptive",
        workers: Optional[int] = None,
    ):
        if sync not in SYNC_MODES:
            raise ValueError(
                f"unknown sync mode {sync!r} (expected one of {SYNC_MODES})"
            )
        self.bus = bus if bus is not None else Fieldbus()
        self.sync = sync
        self.workers = workers
        self.nodes: Dict[str, Kernel] = {}
        self.interfaces: Dict[str, NetInterface] = {}
        self._now = 0
        self._names: List[str] = []
        self._index: Dict[str, int] = {}
        self._ifaces: List[NetInterface] = []
        #: Per-node effect logs (cross-kernel side effects staged for
        #: the barrier merge); aliased by each node's interface.
        self._effect_logs: List[list] = []
        #: Objects addressable across the fork by integer handle
        #: (membership monitors, global-state channels, ...).
        self._shared: List[Any] = []
        # parallel-mode state
        self._pool: Optional[WorkerPool] = None
        self._pool_failed = False
        self._closed = False
        self.parallel_active = False
        self._shards: List[List[int]] = []
        self._owner: List[int] = []
        #: Deliveries routed at the last barrier of a previous
        #: ``run_until`` but not yet shipped to their owning workers.
        self._pending_deliveries: List[list] = []
        # statistics
        #: Quantum windows actually processed (kernels stepped + bus
        #: arbitrated).  Lockstep processes ceil(horizon / quantum) of
        #: them; adaptive/parallel only the ones containing activity.
        self.sync_rounds = 0
        #: Silent windows the adaptive rule jumped over.
        self.windows_skipped = 0
        #: Deliveries not scheduled because the receiver's acceptance
        #: filter could never match (the interface's ``frames_filtered``
        #: is bumped when the delivery instant passes instead of paying
        #: a kernel event + closure for a guaranteed no-op).
        self.deliveries_suppressed = 0
        # Suppressed deliveries whose delivery instant has not passed
        # yet: ``(delivery_time, node_indices_to_bump)``.  The lockstep
        # reference bumps ``frames_filtered`` inside the no-op
        # ``deliver`` event at delivery time; deferring the suppressed
        # bump the same way keeps the stats byte-identical at every
        # cluster boundary, including frames still in flight at t_end.
        self._deferred_filter_stats: List[Tuple[int, Tuple[int, ...]]] = []

    @property
    def now(self) -> int:
        """Global virtual time (all nodes are at this time between
        :meth:`run_until` calls)."""
        return self._now

    @property
    def worker_count(self) -> int:
        """Active parallel workers (0 while serial)."""
        return self._pool.count if self._pool is not None else 0

    def add_node(
        self,
        name: str,
        kernel: Kernel,
        accept: Optional[Iterable[int]] = None,
        vector: int = 15,
        rx_capacity: Optional[int] = DEFAULT_RX_CAPACITY,
    ) -> NetInterface:
        """Attach a kernel to the bus; returns its network interface."""
        if self._pool is not None:
            raise RuntimeError(
                "cannot add nodes after parallel workers have started "
                "(the shards are forked)"
            )
        if name in self.nodes:
            raise ValueError(f"node {name} already exists")
        if kernel.now != self._now:
            raise ValueError(
                f"node {name} joins at local time {kernel.now}, cluster is at {self._now}"
            )
        interface = NetInterface(
            name, kernel, self.bus, accept=accept, vector=vector,
            rx_capacity=rx_capacity,
        )
        log: list = []
        interface._effect_log = log
        self.nodes[name] = kernel
        self.interfaces[name] = interface
        self._names.append(name)
        self._index[name] = len(self._names) - 1
        self._ifaces.append(interface)
        self._effect_logs.append(log)
        return interface

    def enable_dependability(self, max_retransmits: int = 8) -> "Cluster":
        """Arm the bus's error confinement + retransmission layer."""
        if self._pool is not None:
            raise RuntimeError(
                "cannot arm dependability after parallel workers have "
                "started (the workers forked a disarmed bus)"
            )
        self.bus.enable_dependability(max_retransmits)
        return self

    # ------------------------------------------------------------------
    # effect logs: the single cross-kernel channel of every sync mode
    # ------------------------------------------------------------------
    def register_shared(self, obj: Any) -> int:
        """Register a cross-node object (pre-fork) and get its handle.

        Handles resolve to the same logical object on both sides of the
        fork (``cluster._shared[handle]``), which is what lets barrier
        effects and worker queries address monitors and channels
        without pickling them.
        """
        if self._pool is not None:
            raise RuntimeError(
                "cannot register shared objects after parallel workers "
                "have started"
            )
        self._shared.append(obj)
        return len(self._shared) - 1

    def log_effect(self, node: str, record: tuple) -> None:
        """Stage a cross-kernel effect on ``node``'s log.

        ``record[0]`` is the kind tag, ``record[1]`` the virtual time;
        the barrier merge orders records by ``(time, node_index,
        append_seq)`` before applying them.
        """
        self._effect_logs[self._index[node]].append(record)

    def _apply_effects(self, pairs: Iterable[Tuple[int, list]]) -> None:
        """Merge per-node effect logs and apply them in global order.

        ``pairs`` is ``(node_index, records)``; the merge key is
        ``(time, node_index, seq)``.  Applying transmissions in merged
        order assigns the bus's arbitration tie-breaking sequence
        numbers deterministically -- independent of which process (or
        serial loop) produced the log.
        """
        merged = []
        for index, records in pairs:
            merged.extend(
                (record[1], index, seq, record)
                for seq, record in enumerate(records)
            )
        if not merged:
            return
        merged.sort(key=_EFFECT_ORDER)
        bus = self.bus
        names = self._names
        shared = self._shared
        for time, index, _seq, record in merged:
            kind = record[0]
            if kind == "tx":
                bus.queue(time, record[2])
            elif kind == "rx":
                # Receive-side error-state event replayed from a worker
                # (serial modes apply these inline in ``deliver``; the
                # per-machine order is identical either way because one
                # node's log is time-ordered and machines of different
                # nodes are independent).
                state = bus.error_state(names[index])
                if record[2]:
                    state.on_rx_success(time)
                else:
                    state.on_rx_error(time)
            elif kind == "ms":
                shared[record[2]]._apply_transition(
                    time, record[3], record[4], record[5]
                )
            else:
                raise ValueError(f"unknown effect record kind {kind!r}")

    def _flush_effects(self) -> None:
        """Serial-mode barrier: merge + apply the parent-side logs."""
        pairs = []
        for index, log in enumerate(self._effect_logs):
            if log:
                pairs.append((index, log[:]))
                log.clear()
        if pairs:
            self._apply_effects(pairs)

    # ------------------------------------------------------------------
    # the window loops
    # ------------------------------------------------------------------
    def run_until(self, t_end: int) -> None:
        """Advance every node (and the bus) to ``t_end``."""
        if t_end < self._now:
            raise ValueError("cannot run into the past")
        if t_end == self._now:
            # Re-running to the same instant is a no-op: every node and
            # the bus are already there (re-entering the window loop
            # would cost a barrier round -- or a worker spawn -- for
            # nothing).
            return
        if self._closed:
            raise RuntimeError("cluster is closed")
        if not self.nodes:
            self._now = t_end
            return
        quantum = self.bus.min_frame_time_ns
        if not quantum or quantum <= 0:
            # A zero (or undefined) minimum frame time gives the
            # conservative synchronization no lookahead: the window
            # loop would never make progress.
            raise ValueError(
                f"bus.min_frame_time_ns must be a positive lookahead "
                f"(got {quantum!r}); a bus whose smallest frame takes "
                "no wire time cannot bound conservative synchronization"
            )
        # Effects staged *outside* the window loops (e.g. a test
        # calling ``interface.transmit`` directly between runs) must
        # reach the bus before the first round's bound computation --
        # and, on the first parallel call, before the fork (so workers
        # inherit empty logs and the staged frames live on the parent's
        # authoritative bus).
        self._flush_effects()
        if self.sync == "parallel":
            self._run_parallel(t_end, quantum)
        elif self.sync == "adaptive":
            self._run_adaptive(t_end, quantum)
        else:
            self._run_lockstep(t_end, quantum)

    def _run_lockstep(self, t_end: int, quantum: int) -> None:
        """The reference loop: every window, every node, every time."""
        kernels = list(self.nodes.values())
        process = self.bus.process
        now = self._now
        while now < t_end:
            boundary = now + quantum
            if boundary > t_end:
                boundary = t_end
            self.sync_rounds += 1
            for kernel in kernels:
                # A node may have overshot the previous boundary while
                # charging kernel costs (kernel code is not preempted
                # by quantum edges); never ask it to run backwards.
                if kernel.clock.now < boundary:
                    kernel.run_until(boundary)
            self._flush_effects()
            # Bus work that *starts* by the boundary completes at
            # boundary + >= one frame time, i.e. in every node's local
            # future; deliveries are scheduled into the kernels now.
            deliveries = process(boundary)
            if deliveries:
                self._dispatch_deliveries(deliveries, prefilter=False)
            self._now = now = boundary

    def _run_adaptive(self, t_end: int, quantum: int) -> None:
        """The event-driven loop: jump over provably silent windows.

        One pass per round computes each kernel's conservative
        next-activity bound (inlining the :meth:`Kernel.next_event_time`
        logic: this loop runs once per node per round and the call
        overhead is measurable).  The raw heap head is used without
        trimming cancelled entries -- a cancelled head's time is a lower
        bound on the true next event, so the worst case is processing a
        window lockstep would also have processed, never skipping an
        active one.  The same bounds then drive per-node laziness: a
        kernel with nothing due by the boundary would only idle-jump its
        clock, and its trace's adjacent-IDLE merging makes deferring
        that jump invisible, so it is left alone until it has actual
        work (the final boundary runs everyone, returning all clocks at
        ``t_end``).
        """
        kernels = list(self.nodes.values())
        n = len(kernels)
        next_times = [0] * n
        bus = self.bus
        process = bus.process
        bus_next = bus.next_event_time
        rounds = 0
        skipped = 0
        now = self._now
        try:
            while now < t_end:
                boundary = now + quantum
                earliest = None
                for i in range(n):
                    kernel = kernels[i]
                    if kernel.running is not None or kernel._need_resched:
                        t = kernel.clock.now
                    else:
                        heap = kernel.events._heap
                        t = heap[0][0] if heap else None
                    next_times[i] = t
                    if t is not None and (earliest is None or t < earliest):
                        earliest = t
                t = bus_next()
                if t is not None and (earliest is None or t < earliest):
                    earliest = t
                if earliest is None:
                    # Fully quiescent: no pending kernel events anywhere
                    # and nothing queued on the bus.  Nothing can happen
                    # before t_end.
                    boundary = t_end
                elif earliest > boundary:
                    # First possible activity lies in a later window:
                    # jump to that window's boundary.  Staying on the
                    # lockstep lattice keeps every *active* window's
                    # boundaries identical to lockstep's.
                    boundary = now + quantum * (
                        (earliest - now + quantum - 1) // quantum
                    )
                if boundary >= t_end:
                    boundary = t_end
                    for kernel in kernels:
                        if kernel.clock.now < boundary:
                            kernel.run_until(boundary)
                else:
                    for i in range(n):
                        kernel = kernels[i]
                        t = next_times[i]
                        if (
                            t is not None
                            and t <= boundary
                            and kernel.clock.now < boundary
                        ):
                            kernel.run_until(boundary)
                rounds += 1
                skipped += (boundary - now - 1) // quantum
                self._flush_effects()
                if self._deferred_filter_stats:
                    self._flush_filter_stats(boundary)
                deliveries = process(boundary)
                if deliveries:
                    self._dispatch_deliveries(deliveries, prefilter=True)
                self._now = now = boundary
        finally:
            self.sync_rounds += rounds
            self.windows_skipped += skipped

    # ------------------------------------------------------------------
    # the parallel loop
    # ------------------------------------------------------------------
    def start_workers(self) -> bool:
        """Fork the worker pool (idempotent; called lazily by
        :meth:`run_until`, or eagerly by benchmarks to keep the spawn
        out of timed sections).  Returns whether parallel execution is
        armed; ``False`` means the serial adaptive fallback will run.
        """
        if self.sync != "parallel" or self._closed:
            return False
        if self._pool is not None:
            return True
        if self._pool_failed:
            return False
        count = min(resolve_cluster_workers(self.workers), len(self._names))
        if count <= 0 or not pool_available():
            self._pool_failed = True
            return False
        # Node i lives permanently in worker i % count: deterministic,
        # and balanced for the homogeneous-node clusters we model.
        self._shards = [[] for _ in range(count)]
        self._owner = []
        for i in range(len(self._names)):
            self._shards[i % count].append(i)
            self._owner.append(i % count)
        self._pending_deliveries = [[] for _ in range(count)]
        try:
            self._pool = WorkerPool(count, self._worker_factory, name="cluster")
        except WorkerError:
            self._pool_failed = True
            return False
        self.parallel_active = True
        return True

    def _worker_factory(self, index: int) -> Callable:
        """Build the request handler *inside* worker ``index``.

        The fork hands the worker a coherent copy of the whole cluster;
        the handler operates on the shard it owns and stages every
        cross-kernel effect on the (forked) per-node logs, which it
        ships back -- with its updated conservative bounds -- at each
        barrier.
        """
        my = self._shards[index]
        names = self._names
        kernels = [self.nodes[name] for name in names]
        interfaces = self._ifaces
        logs = self._effect_logs
        for i in my:
            # Receive-side error-state updates are *logged*, not
            # applied: the parent owns the authoritative machines
            # (``deliver`` never branches on their values, so the
            # worker-local copies being stale is unobservable).
            interfaces[i]._log_rx_state = True

        def bounds():
            out = []
            for i in my:
                kernel = kernels[i]
                if kernel.running is not None or kernel._need_resched:
                    t = kernel.clock.now
                else:
                    heap = kernel.events._heap
                    t = heap[0][0] if heap else None
                out.append((i, t, kernel.clock.now))
            return out

        def handler(msg):
            kind = msg[0]
            if kind == "window":
                _, boundary, final, deliveries, bumps = msg
                for i, count in bumps:
                    interfaces[i].frames_filtered += count
                for time, frame, targets in deliveries:
                    label = f"net-delivery:{frame.can_id:#x}"
                    for i in targets:
                        kernel = kernels[i]
                        kernel_now = kernel.clock.now
                        kernel.events.schedule(
                            time if time > kernel_now else kernel_now,
                            partial(interfaces[i].deliver, frame),
                            label,
                        )
                if final:
                    for i in my:
                        kernel = kernels[i]
                        if kernel.clock.now < boundary:
                            kernel.run_until(boundary)
                else:
                    # Same per-node laziness as the serial adaptive
                    # loop: recomputing the bound *after* scheduling
                    # this round's deliveries equals the parent's
                    # adjusted bound, so the skip decisions match.
                    for i in my:
                        kernel = kernels[i]
                        if kernel.running is not None or kernel._need_resched:
                            t = kernel.clock.now
                        else:
                            heap = kernel.events._heap
                            t = heap[0][0] if heap else None
                        if (
                            t is not None
                            and t <= boundary
                            and kernel.clock.now < boundary
                        ):
                            kernel.run_until(boundary)
                effects = []
                for i in my:
                    log = logs[i]
                    if log:
                        effects.append((i, log[:]))
                        log.clear()
                return (effects, bounds())
            if kind == "sync":
                return bounds()
            if kind == "query":
                _, fn, items = msg
                return [(i, fn(self, names[i], *args)) for i, args in items]
            raise ValueError(f"unknown cluster worker request {kind!r}")

        return handler

    def _run_parallel(self, t_end: int, quantum: int) -> None:
        """The barrier loop: same boundaries as adaptive, windows run
        concurrently in the worker shards.

        Per round the parent (1) picks the next boundary from the
        workers' conservative bounds and the bus, (2) ships each worker
        its pending deliveries + deferred filter bumps + the boundary,
        (3) collects effect logs and fresh bounds, (4) merges and
        applies the effects, arbitrates the bus, and routes the new
        deliveries.  Deliveries produced at barrier k land strictly
        after boundary k (a frame needs >= one quantum of wire time),
        so shipping them with window k+1's message is exact, not
        approximate.
        """
        if not self.start_workers():
            self._run_adaptive(t_end, quantum)
            return
        pool = self._pool
        count = pool.count
        names = self._names
        n = len(names)
        bounds: List[Optional[int]] = [None] * n
        clocks = [0] * n
        for reply in pool.broadcast(("sync",)):
            for i, t, clock_now in reply:
                bounds[i] = t
                clocks[i] = clock_now
        pending = self._pending_deliveries
        # Deliveries routed at the tail of a previous call have not
        # been shipped yet; the workers' reported bounds cannot know
        # about them, so fold them back in.
        for worker_pending in pending:
            for time, frame, targets in worker_pending:
                for i in targets:
                    eff = time if time > clocks[i] else clocks[i]
                    if bounds[i] is None or eff < bounds[i]:
                        bounds[i] = eff
        bus = self.bus
        process = bus.process
        bus_next = bus.next_event_time
        rounds = 0
        skipped = 0
        now = self._now
        try:
            while now < t_end:
                boundary = now + quantum
                earliest = None
                for i in range(n):
                    t = bounds[i]
                    if t is not None and (earliest is None or t < earliest):
                        earliest = t
                t = bus_next()
                if t is not None and (earliest is None or t < earliest):
                    earliest = t
                if earliest is None:
                    boundary = t_end
                elif earliest > boundary:
                    boundary = now + quantum * (
                        (earliest - now + quantum - 1) // quantum
                    )
                final = boundary >= t_end
                if final:
                    boundary = t_end
                bumps = self._due_filter_bumps(boundary, count)
                for w in range(count):
                    pool.send(
                        w, ("window", boundary, final, pending[w], bumps[w])
                    )
                self._pending_deliveries = pending = [[] for _ in range(count)]
                pairs = []
                for w in range(count):
                    effects, reported = pool.recv(w)
                    pairs.extend(effects)
                    for i, t, clock_now in reported:
                        bounds[i] = t
                        clocks[i] = clock_now
                rounds += 1
                skipped += (boundary - now - 1) // quantum
                self._apply_effects(pairs)
                deliveries = process(boundary)
                if deliveries:
                    self._route_deliveries(deliveries, pending, bounds, clocks)
                self._now = now = boundary
        finally:
            self.sync_rounds += rounds
            self.windows_skipped += skipped

    def _due_filter_bumps(self, boundary: int, count: int) -> List[list]:
        """Deferred ``frames_filtered`` bumps due by ``boundary``,
        grouped per owning worker (the counters live in the shards)."""
        bumps: List[list] = [[] for _ in range(count)]
        if self._deferred_filter_stats:
            keep = []
            due: Dict[int, int] = {}
            for time, indices in self._deferred_filter_stats:
                if time <= boundary:
                    for i in indices:
                        due[i] = due.get(i, 0) + 1
                else:
                    keep.append((time, indices))
            self._deferred_filter_stats = keep
            for i in sorted(due):
                bumps[self._owner[i]].append((i, due[i]))
        return bumps

    def _route_deliveries(self, deliveries, pending, bounds, clocks) -> None:
        """Parallel-mode delivery routing: the prefilter logic of
        :meth:`_dispatch_deliveries`, but producing per-worker shipping
        lists (and bound adjustments) instead of scheduling directly."""
        suppressed = 0
        error_states = self.bus.error_states
        ifaces = self._ifaces
        owner = self._owner
        names = self._names
        n = len(names)
        count = len(pending)
        for delivery in deliveries:
            frame = delivery.frame
            time = delivery.time
            sender = frame.sender
            can_id = frame.can_id
            route = error_states is None and not frame.corrupted
            targets: List[Optional[list]] = [None] * count
            filtered = None
            for i in range(n):
                if names[i] == sender:
                    continue
                if route:
                    accept = ifaces[i].accept
                    if accept is not None and can_id not in accept:
                        if filtered is None:
                            filtered = [i]
                        else:
                            filtered.append(i)
                        suppressed += 1
                        continue
                w = owner[i]
                if targets[w] is None:
                    targets[w] = [i]
                else:
                    targets[w].append(i)
                eff = time if time > clocks[i] else clocks[i]
                if bounds[i] is None or eff < bounds[i]:
                    bounds[i] = eff
            for w in range(count):
                if targets[w] is not None:
                    pending[w].append((time, frame, tuple(targets[w])))
            if filtered is not None:
                self._deferred_filter_stats.append((time, tuple(filtered)))
        self.deliveries_suppressed += suppressed

    # ------------------------------------------------------------------
    # serial delivery dispatch
    # ------------------------------------------------------------------
    def _dispatch_deliveries(self, deliveries, prefilter: bool) -> None:
        """Schedule completed bus deliveries into the receiving kernels.

        With ``prefilter`` (the adaptive mode's delivery batching) each
        delivery is routed only to interfaces that can actually consume
        it: the sender never hears its own frame (``deliver`` returns
        immediately, touching nothing), and -- while the dependability
        layer is disarmed -- a receiver whose acceptance filter rejects
        the identifier gets its ``frames_filtered`` bumped here instead
        of paying a scheduled kernel event plus a closure for a
        guaranteed no-op ``deliver`` call.  Corrupted frames always ship
        (the CRC check runs *before* the acceptance filter and must
        count at every receiver), and with error confinement armed
        filtered frames ship too -- ``deliver`` feeds the receive error
        counters before filtering, exactly like a real CAN controller.
        Without ``prefilter`` (the lockstep reference) every delivery is
        scheduled into every node, the seed behaviour the differential
        tests compare against.
        """
        suppressed = 0
        error_states = self.bus.error_states
        interfaces = self._ifaces
        n = len(interfaces)
        for delivery in deliveries:
            frame = delivery.frame
            time = delivery.time
            sender = frame.sender
            can_id = frame.can_id
            route = prefilter and error_states is None and not frame.corrupted
            label = f"net-delivery:{can_id:#x}"
            filtered = None
            for i in range(n):
                interface = interfaces[i]
                if prefilter and sender == interface.name:
                    continue
                if route:
                    accept = interface.accept
                    if accept is not None and can_id not in accept:
                        if filtered is None:
                            filtered = [i]
                        else:
                            filtered.append(i)
                        suppressed += 1
                        continue
                kernel = interface.kernel
                kernel_now = kernel.clock.now
                kernel.events.schedule(
                    time if time > kernel_now else kernel_now,
                    partial(interface.deliver, frame),
                    label,
                )
            if filtered is not None:
                # ``frames_filtered`` moves when the frame would have
                # been heard, not when the bus completed it -- exactly
                # like the reference's no-op deliver events.
                self._deferred_filter_stats.append((time, tuple(filtered)))
        self.deliveries_suppressed += suppressed

    def _flush_filter_stats(self, up_to: int) -> None:
        """Apply suppressed-delivery stats whose instant has passed."""
        keep = []
        ifaces = self._ifaces
        for time, indices in self._deferred_filter_stats:
            if time <= up_to:
                for i in indices:
                    ifaces[i].frames_filtered += 1
            else:
                keep.append((time, indices))
        self._deferred_filter_stats = keep

    # ------------------------------------------------------------------
    # queries (location-transparent: parent state while serial, the
    # owning worker's state while parallel)
    # ------------------------------------------------------------------
    def node_query(self, node: str, fn: Callable, *args) -> Any:
        """Evaluate ``fn(cluster, node, *args)`` where ``node``'s state
        lives.  ``fn`` must be module-level (picklable by reference)
        for the parallel mode."""
        if node not in self.nodes:
            raise ValueError(f"unknown node {node}")
        if self._closed:
            raise RuntimeError("cluster is closed")
        if not self.parallel_active:
            return fn(self, node, *args)
        i = self._index[node]
        w = self._owner[i]
        self._pool.send(w, ("query", fn, [(i, args)]))
        return self._pool.recv(w)[0][1]

    def map_nodes(self, fn: Callable, *args) -> Dict[str, Any]:
        """:meth:`node_query` over every node (one message per worker);
        results keyed by node name in node order."""
        if self._closed:
            raise RuntimeError("cluster is closed")
        if not self.parallel_active:
            return {name: fn(self, name, *args) for name in self._names}
        messages = [
            ("query", fn, [(i, args) for i in self._shards[w]])
            for w in range(self._pool.count)
        ]
        results: Dict[int, Any] = {}
        for reply in self._pool.roundtrip(messages):
            for i, value in reply:
                results[i] = value
        return {self._names[i]: results[i] for i in range(len(self._names))}

    def trace_signatures(self, include_segments: bool = True) -> Dict[str, str]:
        """Per-node full-trace signatures (sha256)."""
        return self.map_nodes(_query_trace_signature, include_segments)

    def interface_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-node interface counters."""
        return self.map_nodes(_query_interface_stats)

    def rx_timelines(self) -> Dict[str, list]:
        """Per-node ``rx_timeline`` lists (for workloads that attach
        received-frame timelines to their interfaces)."""
        return self.map_nodes(_query_rx_timeline)

    def node_traces(self) -> Dict[str, Any]:
        """Per-node :class:`~repro.sim.trace.Trace` snapshots (copies
        when the node lives in a worker, the live object while serial)."""
        return self.map_nodes(_query_trace)

    def node_collectors(self) -> Dict[str, Any]:
        """Per-node attached :class:`~repro.obs.collector.ObsCollector`
        snapshots (``None`` for nodes without one).  Snapshots shipped
        from workers have no kernel attached -- use
        :meth:`node_registries` for metrics, which are built in place."""
        return self.map_nodes(_query_collector)

    def rx_logs(self) -> Dict[str, Optional[list]]:
        """Per-node accepted-delivery logs (``NetInterface.rx_log``;
        ``None`` for interfaces that never enabled it)."""
        return self.map_nodes(_query_rx_log)

    def node_registries(self) -> Dict[str, Any]:
        """Per-node metrics registries, built where each kernel lives
        (``None`` for nodes without a collector)."""
        return self.map_nodes(_query_node_registry)

    def total_events_popped(self) -> int:
        """Kernel events popped across every node."""
        return sum(self.map_nodes(_query_events_popped).values())

    def total_deadline_violations(self) -> int:
        """Deadline violations across every node."""
        return sum(self.map_nodes(_query_deadline_violations).values())

    def worker_stats(self) -> Optional[List[dict]]:
        """Per-worker busy counters (``None`` while serial).  Collect
        *before* :meth:`close`."""
        if self._pool is None:
            return None
        return self._pool.stats()

    def close(self) -> None:
        """Shut the worker pool down (idempotent).

        A parallel cluster's node state lives in the workers, so after
        ``close`` the cluster can no longer run or answer node queries;
        serial clusters (including ones that never spawned a pool) are
        unaffected.
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self.parallel_active = False
            self._closed = True

    def run_for(self, duration: int) -> None:
        """Advance by ``duration`` ns of global time."""
        self.run_until(self._now + duration)
