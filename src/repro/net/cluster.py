"""Multi-node clusters: 5-10 kernels sharing a fieldbus.

Each node runs its own :class:`~repro.kernel.kernel.Kernel` (its own
CPU and virtual clock); the cluster advances them in lockstep quanta
and simulates the bus in between.  The quantum equals the smallest
frame's wire time: since any frame needs at least that long on the
bus, a frame transmitted during quantum k can only be delivered in
quantum k+1 or later, so nodes never receive events in their local
past -- the classic conservative-synchronization lookahead argument.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.kernel.kernel import Kernel
from repro.net.fieldbus import Fieldbus
from repro.net.node import DEFAULT_RX_CAPACITY, NetInterface

__all__ = ["Cluster"]


class Cluster:
    """A set of kernels joined by one fieldbus."""

    def __init__(self, bus: Optional[Fieldbus] = None):
        self.bus = bus if bus is not None else Fieldbus()
        self.nodes: Dict[str, Kernel] = {}
        self.interfaces: Dict[str, NetInterface] = {}
        self._now = 0

    @property
    def now(self) -> int:
        """Global virtual time (all nodes are at this time between
        :meth:`run_until` calls)."""
        return self._now

    def add_node(
        self,
        name: str,
        kernel: Kernel,
        accept: Optional[Iterable[int]] = None,
        vector: int = 15,
        rx_capacity: Optional[int] = DEFAULT_RX_CAPACITY,
    ) -> NetInterface:
        """Attach a kernel to the bus; returns its network interface."""
        if name in self.nodes:
            raise ValueError(f"node {name} already exists")
        if kernel.now != self._now:
            raise ValueError(
                f"node {name} joins at local time {kernel.now}, cluster is at {self._now}"
            )
        interface = NetInterface(
            name, kernel, self.bus, accept=accept, vector=vector,
            rx_capacity=rx_capacity,
        )
        self.nodes[name] = kernel
        self.interfaces[name] = interface
        return interface

    def enable_dependability(self, max_retransmits: int = 8) -> "Cluster":
        """Arm the bus's error confinement + retransmission layer."""
        self.bus.enable_dependability(max_retransmits)
        return self

    def run_until(self, t_end: int) -> None:
        """Advance every node (and the bus) to ``t_end``."""
        if t_end < self._now:
            raise ValueError("cannot run into the past")
        if not self.nodes:
            self._now = t_end
            return
        quantum = self.bus.min_frame_time_ns
        while self._now < t_end:
            boundary = min(self._now + quantum, t_end)
            for kernel in self.nodes.values():
                # A node may have overshot the previous boundary while
                # charging kernel costs (kernel code is not preempted
                # by quantum edges); never ask it to run backwards.
                if kernel.now < boundary:
                    kernel.run_until(boundary)
            # Bus work that *starts* by the boundary completes at
            # boundary + >= one frame time, i.e. in every node's local
            # future; deliveries are scheduled into the kernels now.
            for delivery in self.bus.process(boundary):
                for interface in self.interfaces.values():
                    self._schedule_delivery(interface, delivery)
            self._now = boundary

    def _schedule_delivery(self, interface: NetInterface, delivery) -> None:
        kernel = interface.kernel
        when = max(delivery.time, kernel.now)
        kernel.schedule_event(
            when,
            lambda frame=delivery.frame, iface=interface: iface.deliver(frame),
            label=f"net-delivery:{delivery.frame.can_id:#x}",
        )

    def run_for(self, duration: int) -> None:
        """Advance by ``duration`` ns of global time."""
        self.run_until(self._now + duration)

    def total_deadline_violations(self) -> int:
        """Deadline violations across every node."""
        return sum(
            len(k.trace.deadline_violations(k.now)) for k in self.nodes.values()
        )
