"""Fieldbus frames.

The paper's distributed targets exchange "short, simple messages over
fieldbuses" (Section 3) -- the protocol family the authors' companion
work [37, 40] targets is CAN-like: small frames carrying an
arbitration identifier whose numeric value doubles as the bus
priority (lower id wins arbitration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["Frame", "frame_bits", "ERROR_FRAME_BITS"]

#: Protocol overhead per frame in bits (CAN 2.0A: SOF, arbitration,
#: control, CRC, ACK, EOF, interframe space -- 47 bits + stuffing;
#: we use the nominal 47).
FRAME_OVERHEAD_BITS = 47

#: Largest payload a fieldbus frame carries (CAN: 8 bytes).
MAX_PAYLOAD_BYTES = 8

#: Wire cost of signalling one error (bits): a 6-bit error flag, the
#: 8-bit error delimiter, and the 3-bit intermission before the bus
#: frees again.  Charged by the bus after a failed transmission when
#: the dependability layer is armed (matching the error-frame term of
#: the classic CAN response-time analysis with faults).
ERROR_FRAME_BITS = 17


def frame_bits(payload_bytes: int) -> int:
    """Wire size of a frame with ``payload_bytes`` of data."""
    if not 0 <= payload_bytes <= MAX_PAYLOAD_BYTES:
        raise ValueError(
            f"fieldbus payload must be 0..{MAX_PAYLOAD_BYTES} bytes"
        )
    return FRAME_OVERHEAD_BITS + 8 * payload_bytes


@dataclass(frozen=True)
class Frame:
    """One fieldbus frame.

    Attributes:
        can_id: Arbitration identifier; lower value = higher priority.
        payload: Application data (opaque to the bus).
        size: Payload size in bytes (0..8).
        sender: Name of the sending node (filled by the interface).
    """

    can_id: int
    payload: Any = None
    size: int = 8
    sender: Optional[str] = None
    #: Set by fault injection: the frame arrives with a failing CRC and
    #: every receiving interface discards it.
    corrupted: bool = False
    #: Stable per-frame flow identifier, stamped by
    #: :meth:`~repro.net.fieldbus.Fieldbus.queue` from the bus's
    #: arbitration sequence counter (assigned at the cluster's barrier
    #: merge, so it is identical across sync modes and worker counts).
    #: Retransmissions keep the original flow id; the cluster trace
    #: exporter uses it to bind a transmit slice to its receive-side
    #: delivery events.  Excluded from equality/hash: two frames with
    #: the same wire content stay equal regardless of when they were
    #: queued.
    flow: Optional[int] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.can_id < 0:
            raise ValueError("can_id must be non-negative")
        if not 0 <= self.size <= MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload size must be 0..{MAX_PAYLOAD_BYTES} bytes"
            )

    @property
    def bits(self) -> int:
        """Wire size in bits."""
        return frame_bits(self.size)
