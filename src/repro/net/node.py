"""Per-node network interface: the fieldbus "device" of Figure 1.

EMERALDS has no in-kernel protocol stack: "nodes in embedded
applications typically exchange short, simple messages over
fieldbuses.  Threads can do so by talking directly to network device
drivers" (Section 3).  The interface mirrors that split:

* :meth:`NetInterface.transmit` is the device-driver send path a
  thread calls directly (via a ``Call`` op or the
  :func:`net_send` helper), charged like a device access;
* received frames raise the node's network interrupt; a first-level
  handler queues the frame and signals the per-node rx event, on
  which a *user-level driver thread* waits (the Figure 1 pattern).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Iterable, Optional, Set

from repro.kernel.program import Call, Op
from repro.net.frame import Frame

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread
    from repro.net.fieldbus import Fieldbus

__all__ = ["NetInterface", "net_send"]

#: Default interrupt vector for network devices.
NET_VECTOR = 15

#: Device-access cost of handing a frame to the bus controller (ns).
TX_ACCESS_NS = 3_000

#: Default receive buffer depth.  Real CAN controllers hold a handful
#: of frames; drivers that stall must overflow, not grow kernel
#: memory without bound (this is a small-memory kernel).
DEFAULT_RX_CAPACITY = 64


class NetInterface:
    """A node's attachment to the fieldbus.

    ``rx_capacity`` bounds the total frames buffered between the
    controller (``_incoming``) and the driver queue (``rx_queue``);
    further deliveries are dropped and counted in ``rx_overflowed``.
    ``None`` means unbounded (the pre-dependability behaviour).
    """

    def __init__(
        self,
        name: str,
        kernel: "Kernel",
        bus: "Fieldbus",
        accept: Optional[Iterable[int]] = None,
        vector: int = NET_VECTOR,
        rx_capacity: Optional[int] = DEFAULT_RX_CAPACITY,
    ):
        if rx_capacity is not None and rx_capacity <= 0:
            raise ValueError("rx_capacity must be positive (or None)")
        self.name = name
        self.kernel = kernel
        self.bus = bus
        #: Acceptance filter: deliver only these identifiers
        #: (``None`` = promiscuous).
        self.accept: Optional[Set[int]] = set(accept) if accept is not None else None
        self.vector = vector
        self.rx_capacity = rx_capacity
        self.rx_queue: Deque[Frame] = deque()
        self.rx_event_name = f"net-rx:{name}"
        kernel.create_event(self.rx_event_name)
        kernel.interrupts.register(vector, self._isr)
        self._incoming: Deque[Frame] = deque()
        # Cluster effect log (set by ``Cluster.add_node``): when
        # present, cross-kernel side effects are staged there and
        # applied at the window barrier in deterministic merge order
        # instead of touching the bus inline.  ``None`` for standalone
        # interfaces driven directly against a bus.
        self._effect_log = None
        # Set inside parallel workers for the interfaces they own:
        # receive-side error-state updates are then logged for the
        # parent (which holds the authoritative state machines) rather
        # than applied to the forked local copy.
        self._log_rx_state = False
        #: Opt-in receive log (``None`` = disabled): one
        #: ``(time, flow, can_id, sender)`` tuple per *accepted*
        #: delivery, i.e. frames that passed CRC, acceptance filter and
        #: capacity checks and raised the rx interrupt.  Only accepted
        #: deliveries are recorded because the cluster's adaptive/
        #: parallel modes legitimately suppress filtered deliveries
        #: before they reach the node -- accepted ones are identical in
        #: every sync mode.  The cluster trace exporter uses it to end
        #: the bus flow arrows on the receiving node's timeline.
        self.rx_log: Optional[list] = None
        # statistics
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_filtered = 0
        self.frames_crc_dropped = 0
        self.rx_overflowed = 0

    # ------------------------------------------------------------------
    # transmit path (thread -> driver -> bus)
    # ------------------------------------------------------------------
    def transmit(self, frame: Frame) -> None:
        """Queue a frame for bus arbitration (device-driver send)."""
        stamped = Frame(
            can_id=frame.can_id,
            payload=frame.payload,
            size=frame.size,
            sender=self.name,
        )
        self.kernel.charge(TX_ACCESS_NS, "net")
        if self._effect_log is not None:
            # Cluster-attached: stage for the barrier merge (the bus's
            # arbitration sequence numbers are assigned there, in
            # global (time, node, seq) order -- identical for serial
            # and parallel execution).
            self._effect_log.append(("tx", self.kernel.now, stamped))
        else:
            self.bus.queue(self.kernel.now, stamped)
        self.frames_sent += 1

    # ------------------------------------------------------------------
    # receive path (bus -> IRQ -> driver thread)
    # ------------------------------------------------------------------
    def deliver(self, frame: Frame) -> None:
        """Called by the cluster when a frame completes on the wire.

        Applies the acceptance filter, then raises the rx interrupt on
        this node (scheduled at the current bus delivery time, which is
        in this node's future by construction).
        """
        if frame.sender == self.name:
            return  # a node does not receive its own transmission
        error_state = self.error_state
        if frame.corrupted:
            # The controller's CRC check fails; the frame never reaches
            # the driver (no interrupt -- CAN controllers drop bad
            # frames in hardware).  The CRC check runs *before* the
            # acceptance filter, so a corrupted frame bumps the REC
            # even when its identifier would have been filtered.
            self.frames_crc_dropped += 1
            if error_state is not None:
                if self._log_rx_state:
                    self._effect_log.append(("rx", self.kernel.now, False))
                else:
                    error_state.on_rx_error(self.kernel.now)
            self.kernel.trace.note(
                self.kernel.now, "frame-crc-dropped", f"{self.name} id={frame.can_id:#x}"
            )
            return
        if error_state is not None:
            if self._log_rx_state:
                self._effect_log.append(("rx", self.kernel.now, True))
            else:
                error_state.on_rx_success(self.kernel.now)
        if self.accept is not None and frame.can_id not in self.accept:
            self.frames_filtered += 1
            return
        if (
            self.rx_capacity is not None
            and len(self._incoming) + len(self.rx_queue) >= self.rx_capacity
        ):
            # The controller FIFO is full (the driver stalled): the
            # frame is lost at this node, bounded memory preserved.
            self.rx_overflowed += 1
            self.kernel.trace.note(
                self.kernel.now, "rx-overflow", f"{self.name} id={frame.can_id:#x}"
            )
            return
        if self.rx_log is not None:
            self.rx_log.append(
                (self.kernel.now, frame.flow, frame.can_id, frame.sender)
            )
        self._incoming.append(frame)
        self.kernel.interrupts.raise_interrupt(self.vector)

    def _isr(self, kernel: "Kernel", vector: int) -> None:
        """First-level rx handler: move the frame to the driver queue
        and wake the driver thread."""
        if self._incoming:
            self.rx_queue.append(self._incoming.popleft())
            self.frames_received += 1
        kernel.events_by_name[self.rx_event_name].signal(kernel)

    def receive(self) -> Optional[Frame]:
        """Pop the next received frame (driver-thread side)."""
        if self.rx_queue:
            return self.rx_queue.popleft()
        return None

    @property
    def error_state(self):
        """This node's CAN error state machine, or ``None`` while the
        bus's dependability layer is disarmed."""
        states = self.bus.error_states
        if states is None:
            return None
        return self.bus.error_state(self.name)


def net_send(
    interface: NetInterface, can_id: int, size: int = 8, payload=None
) -> Op:
    """A ``Call`` op that transmits a frame when executed.

    Lets declarative thread programs send on the bus::

        Program([Compute(us(100)), net_send(iface, can_id=0x10, size=4)])
    """

    def call(kernel, thread) -> None:
        interface.transmit(Frame(can_id=can_id, payload=payload, size=size))

    return Call(call, label=f"net-send:{can_id:#x}")
