"""Fieldbus dependability metrics: the obs-layer bridge.

The dependability layer lives outside any single kernel (the bus, the
membership monitor, and replicated channels span the cluster), so its
metrics cannot ride the per-kernel :class:`~repro.obs.collector.ObsCollector`
hot paths.  Instead this module snapshots the subsystem counters into a
:class:`~repro.obs.metrics.MetricsRegistry` on demand -- either a fresh
one (:func:`net_registry`) or as an extra source folded into a kernel
collector's export
(``collector.add_registry_source(lambda reg: populate_net_registry(reg, ...))``).

Everything exported is an integer derived from virtual time or event
counts, so the export is byte-identical across runs and
``parallel_map`` worker counts (the PR-3 determinism rules).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.obs.metrics import MetricsRegistry

if TYPE_CHECKING:
    from repro.net.cluster import Cluster
    from repro.net.global_state import GlobalStateChannel
    from repro.net.membership import HeartbeatMonitor

__all__ = ["populate_net_registry", "net_registry"]


def populate_net_registry(
    registry: MetricsRegistry,
    cluster: "Cluster",
    channels: Iterable["GlobalStateChannel"] = (),
    monitor: Optional["HeartbeatMonitor"] = None,
) -> MetricsRegistry:
    """Snapshot cluster dependability counters into ``registry``.

    Covers the bus (deliveries, faults, retransmissions, error
    frames), per-node CAN error states, per-interface rx accounting,
    per-channel replica health, and membership transitions.  Returns
    the registry for chaining.
    """
    bus = cluster.bus
    registry.counter("bus_frames_delivered_total").inc(bus.frames_delivered)
    registry.counter("bus_frames_dropped_total").inc(bus.frames_dropped)
    registry.counter("bus_frames_corrupted_total").inc(bus.frames_corrupted)
    registry.counter("bus_frames_retransmitted_total").inc(
        bus.frames_retransmitted
    )
    registry.counter("bus_retransmits_exhausted_total").inc(
        bus.retransmits_exhausted
    )
    registry.counter("bus_frames_deferred_bus_off_total").inc(
        bus.frames_deferred_bus_off
    )
    registry.counter("bus_error_frames_total").inc(bus.error_frames)
    registry.counter("bus_bits_carried_total").inc(bus.bits_carried)
    registry.counter("bus_arbitration_wait_ns_total").inc(
        bus.total_arbitration_wait_ns
    )
    if bus.error_states is not None:
        for node in sorted(bus.error_states):
            state = bus.error_states[node]
            registry.gauge("can_tec", node=node).set(state.tec)
            registry.gauge("can_rec", node=node).set(state.rec)
            registry.gauge("can_error_severity", node=node).set(state.severity)
            registry.counter("can_tx_errors_total", node=node).inc(
                state.tx_errors
            )
            registry.counter("can_rx_errors_total", node=node).inc(
                state.rx_errors
            )
            registry.counter("can_bus_off_total", node=node).inc(
                state.bus_off_events
            )
            registry.counter("can_state_transitions_total", node=node).inc(
                len(state.transitions)
            )
    # Interface counters and channel state live on their nodes -- in a
    # worker shard under sync="parallel" -- so go through the cluster's
    # location-transparent accessors (plain attribute reads in serial
    # modes).
    interface_stats = cluster.interface_stats()
    for name in sorted(interface_stats):
        stats = interface_stats[name]
        registry.counter("net_tx_frames_total", node=name).inc(
            stats["frames_sent"]
        )
        registry.counter("net_rx_frames_total", node=name).inc(
            stats["frames_received"]
        )
        registry.counter("net_rx_filtered_total", node=name).inc(
            stats["frames_filtered"]
        )
        registry.counter("net_rx_crc_dropped_total", node=name).inc(
            stats["frames_crc_dropped"]
        )
        registry.counter("net_rx_overflow_total", node=name).inc(
            stats["rx_overflowed"]
        )
    for channel in channels:
        ch = channel.name
        writer_stats = channel.writer_stats()
        registry.counter("gs_published_total", channel=ch).inc(
            writer_stats["published"]
        )
        registry.counter("gs_rebroadcasts_total", channel=ch).inc(
            writer_stats["resync_broadcasts"]
        )
        statuses = channel.statuses()
        for node in sorted(statuses):
            status = statuses[node]
            labels = {"channel": ch, "node": node}
            registry.counter("gs_updates_total", **labels).inc(status.updates)
            registry.counter("gs_seq_gaps_total", **labels).inc(status.gaps)
            registry.counter("gs_duplicates_total", **labels).inc(
                status.duplicates
            )
            registry.counter("gs_stale_episodes_total", **labels).inc(
                status.stale_count
            )
            registry.counter("gs_resyncs_total", **labels).inc(status.resyncs)
            registry.gauge("gs_latency_ns_max", **labels).set(
                status.latency_max_ns
            )
            registry.gauge("gs_staleness_ns_max", **labels).set(
                status.staleness_max_ns
            )
    if monitor is not None:
        registry.counter("membership_changes_total").inc(monitor.changes)
        downs = sum(1 for e in monitor.events if e[3] == "down")
        registry.counter("membership_down_total").inc(downs)
        registry.counter("membership_up_total").inc(monitor.changes - downs)
    return registry


def net_registry(
    cluster: "Cluster",
    channels: Iterable["GlobalStateChannel"] = (),
    monitor: Optional["HeartbeatMonitor"] = None,
) -> MetricsRegistry:
    """A fresh registry holding the cluster's dependability metrics."""
    return populate_net_registry(MetricsRegistry(), cluster, channels, monitor)
