"""The code parser of Section 6.2.1.

"In EMERALDS, all blocking calls take an extra parameter which is the
identifier of the semaphore to be locked by the upcoming
``acquire_sem()`` call.  This parameter is set to -1 if the next
blocking call is not ``acquire_sem()``.  Semaphore identifiers are
statically defined (at compile time) ... so it is fairly straightforward
to write a parser which examines the application code and inserts the
correct semaphore identifier into the argument list of blocking calls
just preceding ``acquire_sem()`` calls.  Hence, the application
programmer does not have to make any manual modifications to the code."

Our thread bodies are declarative op lists, so the parser is a single
backward pass: for every hint-capable blocking op (``Wait``, ``Recv``,
``Sleep``), find the next blocking op; if it is an ``Acquire``, record
its semaphore as the hint.  The implicit period-boundary block is a
blocking call too: if the first blocking op of the body is an
``Acquire``, the *period hint* names that semaphore (returned
separately for the kernel to attach to the thread).
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Set, Tuple

from repro.kernel.program import Acquire, CvWait, Op, Program, Recv, Release, Send, Sleep, Wait

__all__ = ["insert_hints", "held_across_blocking", "ParsedProgram"]

#: Op types that accept the parser-inserted hint parameter.
_HINTABLE = (Wait, Recv, Sleep)


class ParsedProgram:
    """Result of the parser pass.

    Attributes:
        program: The rewritten program with hints inserted.
        period_hint: Semaphore to be locked first in the body when no
            other blocking call precedes it (the hint for the implicit
            period-boundary block), or ``None``.
        hints_inserted: Number of blocking calls annotated.
    """

    def __init__(self, program: Program, period_hint: Optional[str], hints: int):
        self.program = program
        self.period_hint = period_hint
        self.hints_inserted = hints


def _next_blocking(ops: Tuple[Op, ...], start: int) -> Optional[Op]:
    """The first blocking op at or after ``start``, if any."""
    for op in ops[start:]:
        if op.blocking:
            return op
    return None


def insert_hints(program: Program) -> ParsedProgram:
    """Annotate blocking calls with upcoming-acquire hints.

    Mirrors the paper's compile-time pass exactly: the rewrite is
    purely static, performed before the thread ever runs, and leaves
    programs without acquire calls untouched.
    """
    ops: List[Op] = list(program.ops)
    hints = 0
    for index, op in enumerate(ops):
        if not isinstance(op, _HINTABLE):
            continue
        upcoming = _next_blocking(tuple(ops), index + 1)
        hint = upcoming.sem if isinstance(upcoming, Acquire) else None
        if op.hint != hint:
            ops[index] = replace(op, hint=hint)
        if hint is not None:
            hints += 1

    first_blocking = _next_blocking(tuple(ops), 0)
    period_hint = (
        first_blocking.sem if isinstance(first_blocking, Acquire) else None
    )
    return ParsedProgram(Program(ops), period_hint, hints)


def held_across_blocking(program: Program) -> Set[str]:
    """Semaphores this program may hold across a blocking call.

    The pre-lock registry queue of Section 6.3.1 only matters when some
    thread can *block while holding* the semaphore (the Figure 9/10
    situations); for every other semaphore the registry machinery is
    pure overhead.  Like the hint insertion, this is static knowledge
    the compile-time parser has, so the kernel enables the registry
    only for semaphores in somebody's held-across-blocking set.

    The analysis tracks the held set through the op list.  Because the
    body repeats every period, it is run twice so locks carried over
    the period boundary (unbalanced acquire/release) are caught; a body
    ending with locks held also trips the implicit period-boundary
    block.
    """
    flagged: Set[str] = set()
    held: Set[str] = set()
    for _ in range(2):
        for op in program.ops:
            if isinstance(op, Acquire):
                # A nested acquire may block while the outer locks are
                # held.
                flagged.update(held)
                held.add(op.sem)
            elif isinstance(op, Release):
                held.discard(op.sem)
            elif isinstance(op, CvWait):
                # cv wait releases its mutex, but any *other* held
                # semaphore is held across the block.
                flagged.update(held - {op.mutex})
            elif isinstance(op, (Wait, Recv, Sleep, Send)):
                flagged.update(held)
        if held:
            # Locks held across the period boundary block.
            flagged.update(held)
    return flagged
