"""The EMERALDS semaphore scheme (Sections 6.2 and 6.3).

Two optimizations over :class:`~repro.sync.semaphore.StandardSemaphore`:

**Context-switch elimination.**  Every blocking call carries an extra
parameter -- the identifier of the semaphore the thread will lock next
(inserted by the code parser, Section 6.2.1).  When the event that
would unblock thread T2 occurs, the kernel first checks that
semaphore: if it is locked, priority inheritance to the holder T1
happens *right there*, T2 is parked on the semaphore, and the unblock
is suppressed.  T1 keeps running, releases the semaphore, and only
then is T2 made ready -- eliminating context switch C2 of Figure 7.

**O(1) priority inheritance on the FP queue.**  Because EMERALDS keeps
blocked tasks in the same sorted queue as ready ones, the holder can
simply *swap positions* (and effective keys) with the blocked donor:
the holder lands exactly where its inherited priority puts it (just
ahead of the donor) and the donor becomes a place-holder remembering
the holder's original position.  Undoing inheritance is the reverse
swap.  If a second, higher-priority donor T3 arrives, T3 becomes the
place-holder and T2 is swapped back to its own position (one extra
O(1) step, end of Section 6.2).

**The pre-lock registry queue (Section 6.3.1).**  If the semaphore is
*free* when T2's wake-up event fires, T2 is unblocked normally but
recorded in a registry of threads that have completed their
hint-carrying blocking call without yet reaching ``acquire_sem()``.
When any thread locks the semaphore, every other registry member is
put to sleep (preventing the wasted wake-up of Figure 9); they are all
released again when the semaphore is unlocked.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.sync.semaphore import StandardSemaphore, recompute_inheritance

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["EmeraldsSemaphore"]


class EmeraldsSemaphore(StandardSemaphore):
    """Semaphore with the Section 6 optimizations.

    ``use_swap_pi`` and ``use_hint_parking`` allow the two
    optimizations to be ablated independently (both default on).
    """

    scheme = "emeralds"

    def __init__(
        self,
        name: str,
        capacity: int = 1,
        use_swap_pi: bool = True,
        use_hint_parking: bool = True,
    ):
        super().__init__(name, capacity)
        self.use_swap_pi = use_swap_pi
        self.use_hint_parking = use_hint_parking
        #: The Section 6.3.1 registry is only armed when the code
        #: parser found a thread that may block while holding this
        #: semaphore (see repro.sync.parser.held_across_blocking);
        #: otherwise its bookkeeping would be pure overhead.
        self.registry_enabled = False
        #: Threads parked by the hint check: blocked *before* reaching
        #: their acquire call.  Unblocked (not granted) on release.
        self.parked: List["Thread"] = []
        #: Registry: threads past their hint-carrying blocking call but
        #: not yet at ``acquire_sem`` (Section 6.3.1).
        self.registry: List["Thread"] = []
        # statistics
        self.parks = 0
        self.saved_switches = 0
        self.registry_blocks = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def donor_threads(self) -> List["Thread"]:
        return list(self.waiters) + list(self.parked)

    # ------------------------------------------------------------------
    # the hint check (called from the kernel's unblock path)
    # ------------------------------------------------------------------
    def on_hint_unblock(self, kernel: "Kernel", thread: "Thread") -> bool:
        """Unblock-time check of the parser-inserted hint.

        Returns True when the thread was parked (the caller must *not*
        unblock it); False when the thread should wake normally (it is
        then tracked in the registry).
        """
        if not self.use_hint_parking or self.capacity != 1:
            return False
        kernel.charge(kernel.model.sem_hint_check_ns, "sem")
        if self.locked:
            # Priority inheritance happens here, earlier than the
            # standard scheme would do it (safe: Section 6.2.3).
            self._do_inheritance(kernel, thread)
            self.parked.append(thread)
            thread.parked_on = self.name
            self.parks += 1
            self.saved_switches += 1
            obs = kernel.obs
            if obs is not None:
                obs.on_sem_wait(self.name, len(self.waiters) + len(self.parked))
            return True
        if self.registry_enabled:
            self.registry.append(thread)
            thread.registered_on.add(self.name)
        return False

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def acquire(self, kernel: "Kernel", thread: "Thread") -> bool:
        self.acquires += 1
        self._registry_discard(thread)
        kernel.charge(self._path_cost(kernel, contended=self.available == 0), "sem")
        if self.available > 0:
            self._grant(thread)
            # Section 6.3.1: freeze every other registry member so a
            # wasted wake-up (Figure 9) cannot happen.
            self._registry_freeze(kernel, thread)
            return True
        self.contended_acquires += 1
        self._do_inheritance(kernel, thread)
        self.waiters.append(thread)
        obs = kernel.obs
        if obs is not None:
            obs.on_sem_wait(self.name, len(self.waiters) + len(self.parked))
        kernel.block_thread(thread, f"sem:{self.name}")
        return False

    def release(self, kernel: "Kernel", thread: "Thread") -> None:
        from repro.sync.semaphore import SemaphoreError

        self.releases += 1
        contended = bool(self.waiters or self.parked or self.registry)
        kernel.charge(self._path_cost(kernel, contended), "sem")
        if self.capacity == 1 and self.holder is not thread:
            raise SemaphoreError(
                f"{thread.name} released {self.name} held by "
                f"{self.holder.name if self.holder else 'nobody'}"
            )
        if self.name in thread.held_sems:
            thread.held_sems.remove(self.name)
        self.holder = None
        self.available += 1
        self._undo_inheritance(kernel, thread)
        self._hand_off(kernel)
        # Wake the parked threads (they resume after their original
        # blocking call and will reach acquire_sem on their own) and
        # the registry members frozen by the lock.
        for parked in list(self.parked):
            self.parked.remove(parked)
            parked.parked_on = None
            kernel.unblock_thread(parked)
        self._registry_thaw(kernel)

    def _path_cost(self, kernel: "Kernel", contended: bool) -> int:
        """Per-call fixed cost: the uncontended fast path costs the
        same as the standard implementation; the contended path (a lock
        to wait for, or parked/registry threads to manage) pays the
        larger EMERALDS fixed cost."""
        if contended:
            return kernel.model.sem_fixed_emeralds_ns // 2
        return kernel.model.sem_fixed_standard_ns // 2

    # ------------------------------------------------------------------
    # priority inheritance, O(1) flavour
    # ------------------------------------------------------------------
    def _do_inheritance(self, kernel: "Kernel", donor: "Thread") -> None:
        holder = self.holder
        if holder is None or self.capacity != 1:
            return
        if kernel.priority_rank(donor) >= kernel.priority_rank(holder):
            return
        if self.use_swap_pi:
            if holder.pi_donor_of is not None:
                # A previous donor is acting as place-holder; put it
                # back first (the "T3 becomes T1's place-holder" case).
                previous = kernel.threads[holder.pi_donor_of]
                cost = kernel.scheduler.swap_with_placeholder(holder, previous)
                if cost is not None:
                    kernel.charge(cost, "pi")
                    previous.pi_donor_of = None
                    holder.pi_donor_of = None
            cost = kernel.scheduler.swap_with_placeholder(holder, donor)
            if cost is not None:
                kernel.charge(cost, "pi")
                holder.pi_donor_of = donor.name
                obs = kernel.obs
                if obs is not None:
                    obs.on_pi_donation(
                        kernel.now, self.name, donor.name, holder.name,
                        "swap", False,
                    )
                return
        # DP-queue tasks, cross-queue donations, or swap disabled:
        # fall back to the standard raise (O(1) for DP tasks anyway).
        cost = kernel.scheduler.raise_priority(holder, donor)
        kernel.charge(cost, "pi")
        obs = kernel.obs
        if obs is not None:
            obs.on_pi_donation(
                kernel.now, self.name, donor.name, holder.name, "raise", False
            )

    def _undo_inheritance(self, kernel: "Kernel", thread: "Thread") -> None:
        if thread.pi_donor_of is not None:
            placeholder = kernel.threads[thread.pi_donor_of]
            cost = kernel.scheduler.swap_with_placeholder(thread, placeholder)
            if cost is not None:
                kernel.charge(cost, "pi")
            thread.pi_donor_of = None
            placeholder.pi_donor_of = None
            obs = kernel.obs
            if obs is not None:
                obs.on_pi_restore(kernel.now, thread.name)
            # The thread may still hold other contended semaphores.
            if any(
                kernel.semaphores[s].donor_threads()
                for s in thread.held_sems
                if s in kernel.semaphores
            ):
                recompute_inheritance(kernel, thread)
            return
        recompute_inheritance(kernel, thread)

    # ------------------------------------------------------------------
    # registry mechanics (Section 6.3.1)
    # ------------------------------------------------------------------
    def _registry_discard(self, thread: "Thread") -> None:
        if thread in self.registry:
            self.registry.remove(thread)
            thread.registered_on.discard(self.name)

    def _registry_freeze(self, kernel: "Kernel", locker: "Thread") -> None:
        for member in list(self.registry):
            if member is locker:
                continue
            if member.blocked_on is None and member is not kernel.running:
                kernel.block_thread(member, f"sem-registry:{self.name}")
                self.registry_blocks += 1

    def _registry_thaw(self, kernel: "Kernel") -> None:
        for member in list(self.registry):
            if member.blocked_on == f"sem-registry:{self.name}":
                kernel.unblock_thread(member)
