"""Standard semaphores with priority inheritance (Section 6.1).

This is the baseline the paper improves upon::

    if (sem locked) {
        do priority inheritance;
        add caller thread to wait queue;
        block;                      /* wait for sem to be released */
    }
    lock sem;

Priority inheritance uses the standard queue manipulation: the holder
is removed from its fixed-priority queue and reinserted at the donor's
priority (O(n) per step), or -- for dynamic-priority tasks -- its
deadline field is overwritten (O(1), the EDF queue is unsorted).
Inheritance is transitive: if the holder is itself blocked on another
semaphore, the donation is propagated down the chain.

The contended acquire/release pair costs *two* context switches
(Figure 7): one into the holder when the caller blocks, one back when
the lock is released.  Those switches are charged by the kernel's
dispatcher; this module charges the fixed semaphore-path cost and the
PI queue operations.

Semaphores are binary mutexes by default (the paper's primary use:
object method synchronization under OO design); a ``capacity`` above 1
gives counting semantics, for which holder tracking and PI are
disabled (no single holder exists to inherit).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["StandardSemaphore", "SemaphoreError", "recompute_inheritance"]

#: Maximum priority-inheritance chain length walked on a block.
_MAX_PI_CHAIN = 32


class SemaphoreError(Exception):
    """Semantic misuse: releasing an unheld semaphore, etc."""


def recompute_inheritance(kernel: "Kernel", thread: "Thread") -> None:
    """Re-derive ``thread``'s inherited priority from current donors.

    Donors are the waiters of every semaphore the thread still holds.
    Called after a release or whenever the donor set changes; restores
    the base priority when no donors remain.
    """
    donors: List["Thread"] = []
    for sem_name in thread.held_sems:
        sem = kernel.semaphores.get(sem_name)
        if sem is not None:
            donors.extend(sem.donor_threads())
    inherited = (
        thread.effective_key != thread.base_key or thread.pi_deadline is not None
    )
    # Restore first: the comparison below must be against the thread's
    # *base* priority, not a previously inherited one (otherwise a
    # donation equal to the current inherited level is dropped).
    if inherited:
        cost = kernel.scheduler.restore_priority(thread)
        kernel.charge(cost, "pi")
        obs = kernel.obs
        if obs is not None:
            obs.on_pi_restore(kernel.now, thread.name)
    if donors:
        best = min(donors, key=kernel.priority_rank)
        if kernel.priority_rank(best) < kernel.priority_rank(thread):
            cost = kernel.scheduler.raise_priority(thread, best)
            kernel.charge(cost, "pi")
            obs = kernel.obs
            if obs is not None:
                sem_name = next(
                    (
                        s
                        for s in thread.held_sems
                        if s in kernel.semaphores
                        and best in kernel.semaphores[s].donor_threads()
                    ),
                    "?",
                )
                obs.on_pi_donation(
                    kernel.now, sem_name, best.name, thread.name, "raise", False
                )


class StandardSemaphore:
    """Binary/counting semaphore, standard implementation."""

    #: Scheme tag used in traces and stats.
    scheme = "standard"

    def __init__(self, name: str, capacity: int = 1):
        if capacity < 1:
            raise ValueError("semaphore capacity must be >= 1")
        self.name = name
        self.capacity = capacity
        self.available = capacity
        #: Current holder (binary semaphores only).
        self.holder: Optional["Thread"] = None
        #: Threads blocked in ``acquire_sem`` (lock granted on release).
        self.waiters: List["Thread"] = []
        # statistics
        self.acquires = 0
        self.contended_acquires = 0
        self.releases = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def locked(self) -> bool:
        return self.available == 0

    def donor_threads(self) -> List["Thread"]:
        """Threads whose priority the holder should inherit."""
        return list(self.waiters)

    # ------------------------------------------------------------------
    # operations (invoked by the kernel's op interpreter)
    # ------------------------------------------------------------------
    def acquire(self, kernel: "Kernel", thread: "Thread") -> bool:
        """Lock the semaphore for ``thread``.

        Returns True when acquired immediately; False when the thread
        was blocked (the lock is transferred at release time, so on
        wake-up the thread already holds it).
        """
        self.acquires += 1
        kernel.charge(kernel.model.sem_fixed_standard_ns // 2, "sem")
        if self.available > 0:
            self._grant(thread)
            return True
        self.contended_acquires += 1
        self._inherit_chain(kernel, thread)
        self.waiters.append(thread)
        obs = kernel.obs
        if obs is not None:
            obs.on_sem_wait(self.name, len(self.waiters))
        kernel.block_thread(thread, f"sem:{self.name}")
        return False

    def release(self, kernel: "Kernel", thread: "Thread") -> None:
        """Unlock; transfers ownership to the best waiter, if any."""
        self.releases += 1
        kernel.charge(kernel.model.sem_fixed_standard_ns // 2, "sem")
        if self.capacity == 1 and self.holder is not thread:
            raise SemaphoreError(
                f"{thread.name} released {self.name} held by "
                f"{self.holder.name if self.holder else 'nobody'}"
            )
        if self.name in thread.held_sems:
            thread.held_sems.remove(self.name)
        self.holder = None
        self.available += 1
        # Undo (or re-derive) the releaser's inherited priority.
        recompute_inheritance(kernel, thread)
        self._hand_off(kernel)

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _grant(self, thread: "Thread") -> None:
        self.available -= 1
        if self.capacity == 1:
            self.holder = thread
        thread.held_sems.append(self.name)

    def _hand_off(self, kernel: "Kernel") -> None:
        """Grant the lock to the highest-priority waiter and wake it."""
        if not self.waiters or self.available == 0:
            return
        best = min(self.waiters, key=kernel.priority_rank)
        self.waiters.remove(best)
        self._grant(best)
        kernel.unblock_thread(best)

    def _inherit_chain(self, kernel: "Kernel", donor: "Thread") -> None:
        """Propagate ``donor``'s priority down the holder chain."""
        if self.capacity != 1:
            return  # counting semaphores have no single holder
        current: Optional[StandardSemaphore] = self
        for _ in range(_MAX_PI_CHAIN):
            holder = current.holder if current is not None else None
            if holder is None:
                return
            if kernel.priority_rank(donor) < kernel.priority_rank(holder):
                cost = kernel.scheduler.raise_priority(holder, donor)
                kernel.charge(cost, "pi")
                obs = kernel.obs
                if obs is not None:
                    obs.on_pi_donation(
                        kernel.now,
                        current.name,
                        donor.name,
                        holder.name,
                        "raise",
                        current is not self,
                    )
            # Transitive step: is the holder itself blocked on a sem?
            blocked = holder.blocked_on
            if blocked is None or not blocked.startswith("sem:"):
                return
            next_sem = kernel.semaphores.get(blocked.split(":", 1)[1])
            if next_sem is None or next_sem is current:
                return
            current = next_sem

    def __repr__(self) -> str:
        state = f"held by {self.holder.name}" if self.holder else "free"
        return f"<{type(self).__name__} {self.name} {state}, {len(self.waiters)} waiting>"
