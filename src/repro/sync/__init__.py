"""Synchronization: semaphores (standard and EMERALDS), condvars, parser."""

from repro.sync.condvar import CondVarError, ConditionVariable
from repro.sync.emeralds_sem import EmeraldsSemaphore
from repro.sync.parser import ParsedProgram, insert_hints
from repro.sync.semaphore import SemaphoreError, StandardSemaphore

__all__ = [
    "CondVarError",
    "ConditionVariable",
    "EmeraldsSemaphore",
    "ParsedProgram",
    "SemaphoreError",
    "StandardSemaphore",
    "insert_hints",
]
