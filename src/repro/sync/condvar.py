"""Condition variables with priority-ordered wake-up (Section 3).

EMERALDS offers condition variables alongside semaphores, with
priority inheritance supplied by the underlying mutex.  ``wait``
atomically releases the mutex and blocks; ``signal`` moves the
highest-priority waiter to re-acquire the mutex (it wakes already
holding it, or queues on the mutex with priority inheritance if
another thread grabbed it first); ``broadcast`` does the same for
every waiter.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

if TYPE_CHECKING:
    from repro.kernel.kernel import Kernel
    from repro.kernel.thread import Thread

__all__ = ["ConditionVariable", "CondVarError"]


class CondVarError(Exception):
    """Semantic misuse of a condition variable."""


class ConditionVariable:
    """A kernel condition variable bound to no particular mutex."""

    def __init__(self, name: str):
        self.name = name
        #: Blocked waiters together with the mutex each must re-acquire.
        self.waiters: List[tuple] = []
        # statistics
        self.waits = 0
        self.signals = 0
        self.broadcasts = 0

    def wait(self, kernel: "Kernel", thread: "Thread", mutex_name: str) -> None:
        """Release ``mutex_name`` and block until signalled."""
        self.waits += 1
        mutex = kernel.semaphores.get(mutex_name)
        if mutex is None:
            raise CondVarError(f"cv {self.name}: unknown mutex {mutex_name}")
        if mutex.holder is not thread:
            raise CondVarError(
                f"cv {self.name}: {thread.name} waits without holding {mutex_name}"
            )
        self.waiters.append((thread, mutex_name))
        # Release wakes the next mutex waiter (if any) and hands off.
        mutex.release(kernel, thread)
        kernel.block_thread(thread, f"cv:{self.name}")

    def signal(self, kernel: "Kernel", thread: "Thread") -> None:
        """Wake the highest-priority waiter."""
        self.signals += 1
        if not self.waiters:
            return
        best = min(self.waiters, key=lambda w: kernel.priority_rank(w[0]))
        self.waiters.remove(best)
        self._wake(kernel, *best)

    def broadcast(self, kernel: "Kernel", thread: "Thread") -> None:
        """Wake every waiter (in priority order)."""
        self.broadcasts += 1
        waiting = sorted(self.waiters, key=lambda w: kernel.priority_rank(w[0]))
        self.waiters.clear()
        for waiter, mutex_name in waiting:
            self._wake(kernel, waiter, mutex_name)

    def _wake(self, kernel: "Kernel", waiter: "Thread", mutex_name: str) -> None:
        """Transition a waiter from the CV to mutex re-acquisition."""
        mutex = kernel.semaphores[mutex_name]
        if mutex.available > 0:
            mutex._grant(waiter)
            kernel.unblock_thread(waiter)
        else:
            # Stay blocked, but now on the mutex, with PI to its holder.
            if mutex.holder is not None and kernel.priority_rank(
                waiter
            ) < kernel.priority_rank(mutex.holder):
                cost = kernel.scheduler.raise_priority(mutex.holder, waiter)
                kernel.charge(cost, "pi")
            waiter.blocked_on = f"sem:{mutex_name}"
            mutex.waiters.append(waiter)

    def __repr__(self) -> str:
        return f"<ConditionVariable {self.name}, {len(self.waiters)} waiting>"
