#!/usr/bin/env python3
"""Avionics control cluster: four nodes, global state, DM scheduling.

The paper's second distributed domain (Section 2: "automotive and
avionics control systems").  Four EMERALDS nodes share a 2 Mbit/s
fieldbus:

* **adc** -- air-data computer: samples airspeed/altitude at 20 ms and
  publishes both on *global state channels* (state messages replicated
  over the bus -- every node reads the freshest value locally, without
  traps);
* **fcc** -- flight-control computer: a 10 ms inner control loop and a
  40 ms outer loop sharing the gain schedule behind an EMERALDS
  semaphore; scheduled **deadline-monotonically** because its watchdog
  task has a long period but a tight deadline (the case where DM beats
  RM);
* **actuators** -- elevator/aileron servo node receiving control
  frames;
* **monitor** -- health monitor reading both global channels at 100 ms.

Prints per-node schedule health, bus statistics, the DM-vs-RM point,
and the memory footprint of every node against a 64 KB part.

Run:  python examples/avionics_cluster.py
"""

from repro import (
    Acquire,
    Call,
    Compute,
    CSDScheduler,
    Frame,
    Kernel,
    OverheadModel,
    Program,
    Release,
    StateRead,
    Wait,
    ms,
    to_ms,
    us,
)
from repro.core.rm import RMScheduler
from repro.kernel.footprint import kernel_footprint
from repro.net import Cluster, Fieldbus
from repro.net.global_state import GlobalStateChannel

AIRSPEED_ID = 0x08
ALTITUDE_ID = 0x09
ELEVATOR_ID = 0x10


def main() -> None:
    cluster = Cluster(Fieldbus(bit_rate_bps=2_000_000))

    adc = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=1))
    fcc = Kernel(RMScheduler(OverheadModel()))  # DM keys via fp_policy
    act = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=1))
    mon = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=1))

    cluster.add_node("adc", adc)
    cluster.add_node("fcc", fcc, accept=set())
    cluster.add_node("act", act, accept={ELEVATOR_ID})
    cluster.add_node("mon", mon, accept=set())

    airspeed = GlobalStateChannel(
        cluster, "airspeed", can_id=AIRSPEED_ID, writer_node="adc",
        driver_period=ms(10), readers=["fcc", "mon"],
    )
    altitude = GlobalStateChannel(
        cluster, "altitude", can_id=ALTITUDE_ID, writer_node="adc",
        driver_period=ms(10), readers=["fcc", "mon"],
    )

    # --- air-data computer ------------------------------------------
    tick = {"v": 0}

    def sample(kernel, thread):
        tick["v"] += 1
        return 180 + (tick["v"] % 7)

    adc.create_thread(
        "sampler",
        Program(
            [
                Compute(us(400)),
                airspeed.publish_op(value_fn=sample),
                altitude.publish_op(value=35_000),
            ]
        ),
        period=ms(20),
        deadline=ms(10),
        csd_queue=0,
    )

    # --- flight-control computer (deadline-monotonic) ----------------
    fcc.create_semaphore("gains")
    fcc_iface = cluster.interfaces["fcc"]

    def send_elevator(kernel, thread):
        fcc_iface.transmit(
            Frame(can_id=ELEVATOR_ID, size=4, payload=("elev", kernel.now))
        )

    fcc.create_thread(
        "inner_loop",
        Program(
            [
                StateRead(airspeed.channel_name("fcc")),
                Acquire("gains"),
                Compute(ms(2)),
                Release("gains"),
                Call(send_elevator),
            ]
        ),
        period=ms(10),
        deadline=ms(10),
        fp_policy="dm",
    )
    fcc.create_thread(
        "outer_loop",
        Program(
            [
                StateRead(altitude.channel_name("fcc")),
                Acquire("gains"),
                Compute(ms(2)),
                Release("gains"),
            ]
        ),
        period=ms(40),
        deadline=ms(40),
        fp_policy="dm",
    )
    # The DM case: long period (200 ms) but a 4 ms deadline.  Under RM
    # this watchdog would rank *below* both loops and miss; under DM it
    # ranks first.
    fcc.create_thread(
        "watchdog",
        Program([Compute(us(800))]),
        period=ms(200),
        deadline=ms(4),
        fp_policy="dm",
    )

    # --- actuator node ------------------------------------------------
    act_iface = cluster.interfaces["act"]
    latencies = []

    def actuate(kernel, thread):
        while True:
            frame = act_iface.receive()
            if frame is None:
                break
            if frame.can_id != ELEVATOR_ID:
                continue  # not ours (defensive; the filter screens these)
            _, sent = frame.payload
            latencies.append(kernel.now - sent)

    act.create_thread(
        "servo",
        Program([Wait(act_iface.rx_event_name), Call(actuate), Compute(us(500))]),
        period=ms(10),
        deadline=ms(5),
        csd_queue=0,
    )

    # --- monitor node ---------------------------------------------------
    readings = []
    mon.create_thread(
        "health",
        Program(
            [
                StateRead(airspeed.channel_name("mon")),
                Call(lambda kern, t: readings.append(t.last_read)),
                StateRead(altitude.channel_name("mon")),
                Compute(ms(1)),
            ]
        ),
        period=ms(100),
        csd_queue=1,
    )

    horizon = ms(3000)
    cluster.run_until(horizon)

    print("=== avionics cluster: 4 nodes, 2 Mbit/s bus, 3 s ===\n")
    for name, kernel in cluster.nodes.items():
        violations = kernel.trace.deadline_violations(kernel.now)
        print(
            f"{name:>4}: {len(kernel.trace.jobs):4d} jobs, "
            f"{len(violations)} deadline violations, "
            f"kernel overhead {kernel.trace.kernel_time_total / 1e6:.2f} ms"
        )
    bus = cluster.bus
    print(
        f"\nbus: {bus.frames_delivered} frames, "
        f"{100 * bus.utilization(horizon):.2f}% load"
    )
    if latencies:
        print(
            f"elevator command latency: {to_ms(min(latencies)):.3f}.."
            f"{to_ms(max(latencies)):.3f} ms"
        )
    print(f"monitor airspeed readings (last 3): {readings[-3:]}")

    from repro.core.schedulability import dm_schedulable, rm_schedulable
    from repro.core.task import TaskSpec, Workload

    fcc_workload = Workload(
        [
            TaskSpec(name="inner", period=ms(10), wcet=ms(2)),
            TaskSpec(name="outer", period=ms(40), wcet=ms(2)),
            TaskSpec(name="watchdog", period=ms(200), wcet=us(800), deadline=ms(4)),
        ]
    )
    print(
        f"\nfcc task set: RM-schedulable={rm_schedulable(fcc_workload)}, "
        f"DM-schedulable={dm_schedulable(fcc_workload)} "
        "(the watchdog's tight deadline is why the fcc runs DM)"
    )

    from repro.net import MessageStream, bus_response_times

    streams = [
        MessageStream(name="airspeed", can_id=AIRSPEED_ID, size=8, period=ms(20)),
        MessageStream(name="altitude", can_id=ALTITUDE_ID, size=8, period=ms(20)),
        MessageStream(name="elevator", can_id=ELEVATOR_ID, size=4, period=ms(10)),
    ]
    bounds = bus_response_times(streams, cluster.bus)
    print("\nbus response-time analysis (worst case per stream):")
    for name, bound in bounds.items():
        print(f"  {name:>9}: {to_ms(bound):.3f} ms" if bound else f"  {name}: UNSCHEDULABLE")

    print("\nmemory footprint per node (64 KB parts):")
    for name, kernel in cluster.nodes.items():
        report = kernel_footprint(kernel)
        print(
            f"  {name:>4}: {report.total_bytes:6d} B total "
            f"-> fits: {report.fits(64 * 1024)}"
        )
    total = cluster.total_deadline_violations()
    print(f"\ntotal deadline violations: {total}")
    assert total == 0


if __name__ == "__main__":
    main()
