#!/usr/bin/env python3
"""Automotive engine controller -- the paper's flagship domain.

Small-memory embedded controllers like the Motorola 68332 run exactly
this kind of workload (Section 1: "engine control in automobiles").
The application:

* a **crank-angle sensor** interrupting every 10 ms (6000 RPM, one
  pulse per revolution); its user-level driver thread timestamps the
  pulse and publishes engine speed on a state-message channel;
* **injection** (5 ms) and **ignition** (10 ms) control tasks that read
  the speed channel and compute actuation, sharing a calibration table
  behind an EMERALDS semaphore;
* a **thermal monitor** (100 ms) and a **diagnostics logger** (250 ms)
  on the cheap fixed-priority queue, receiving fault reports through a
  mailbox;
* an **operator button** arriving sporadically, handled aperiodically.

The same application is run twice -- once with the standard semaphore
implementation and once with the EMERALDS scheme -- to show the
Section 6 savings in a realistic setting rather than a microbenchmark.

Run:  python examples/engine_control.py
"""

from repro import (
    Acquire,
    Compute,
    CSDScheduler,
    Kernel,
    OverheadModel,
    Program,
    Recv,
    Release,
    Send,
    StateRead,
    StateWrite,
    Wait,
    ms,
    to_us,
    us,
)
from repro.kernel.devices import AperiodicDevice, PeriodicDevice

CRANK_VECTOR = 1
BUTTON_VECTOR = 2


def build_kernel(sem_scheme: str) -> Kernel:
    scheduler = CSDScheduler(OverheadModel(), dp_queue_count=2)
    kernel = Kernel(scheduler, sem_scheme=sem_scheme)

    kernel.create_semaphore("calibration")
    kernel.create_mailbox("faults", capacity=16)
    kernel.create_channel("engine_speed", slots=4)
    kernel.create_channel("coolant_temp", slots=4)

    # -- devices and their user-level drivers ------------------------
    kernel.interrupts.register_event_handler(CRANK_VECTOR, "crank_pulse")
    PeriodicDevice(kernel, "crank", vector=CRANK_VECTOR, period=ms(10), jitter=us(50))
    AperiodicDevice(
        kernel,
        "button",
        vector=BUTTON_VECTOR,
        mean_interarrival=ms(400),
        min_interarrival=ms(50),
        seed=7,
        horizon=ms(3000),
    )

    # Crank driver: waits for the pulse, publishes speed (DP1).
    kernel.create_thread(
        "crank_driver",
        Program(
            [
                Wait("crank_pulse"),
                Compute(us(80)),
                StateWrite("engine_speed", value=6000),
            ]
        ),
        period=ms(10),
        deadline=ms(2),
        csd_queue=0,
    )

    # -- control tasks ------------------------------------------------
    # Injection: the tightest loop; reads speed, locks the calibration
    # table, computes pulse width (DP1).
    kernel.create_thread(
        "injection",
        Program(
            [
                StateRead("engine_speed"),
                Acquire("calibration"),
                Compute(us(600)),
                Release("calibration"),
                Compute(us(200)),
            ]
        ),
        period=ms(5),
        csd_queue=0,
    )

    # Ignition advance (DP2).
    kernel.create_thread(
        "ignition",
        Program(
            [
                StateRead("engine_speed"),
                Acquire("calibration"),
                Compute(us(900)),
                Release("calibration"),
            ]
        ),
        period=ms(10),
        csd_queue=1,
    )

    # Lambda (air/fuel) correction (DP2): slow, also locks the table.
    kernel.create_thread(
        "lambda_ctrl",
        Program(
            [
                Compute(us(400)),
                Acquire("calibration"),
                Compute(ms(3)),
                Release("calibration"),
            ]
        ),
        period=ms(50),
        csd_queue=1,
    )

    # -- background tasks on the FP queue -----------------------------
    kernel.create_thread(
        "thermal",
        Program(
            [
                Compute(us(300)),
                StateWrite("coolant_temp", value=92),
                Send("faults", size=8, payload="temp-ok"),
            ]
        ),
        period=ms(125),
        csd_queue=2,
    )
    kernel.create_thread(
        "diagnostics",
        Program(
            [Recv("faults"), Recv("faults"), StateRead("coolant_temp"), Compute(ms(3))]
        ),
        period=ms(250),
        csd_queue=2,
    )

    # Operator button: a true aperiodic thread, activated by the ISR.
    kernel.create_thread(
        "button_task",
        Program([Compute(ms(1))]),
        priority=1_000,
        deadline=ms(100),
        csd_queue=2,
    )
    kernel.interrupts.register(
        BUTTON_VECTOR, lambda kern, vec: kern.activate("button_task")
    )
    return kernel


def run(sem_scheme: str):
    kernel = build_kernel(sem_scheme)
    trace = kernel.run_until(ms(3000))
    return kernel, trace


def main() -> None:
    print("=== engine controller: 3 s of virtual time, CSD-3 ===\n")
    results = {}
    for scheme in ("standard", "emeralds"):
        kernel, trace = run(scheme)
        results[scheme] = (kernel, trace)
        sem = kernel.semaphores["calibration"]
        violations = trace.deadline_violations(kernel.now)
        print(f"--- semaphore scheme: {scheme} ---")
        print(trace.summary(kernel.now))
        print(
            f"calibration lock: {sem.acquires} acquires, "
            f"{sem.contended_acquires} contended, "
            f"{getattr(sem, 'parks', 0)} hint-parks"
        )
        print(f"deadline violations: {len(violations)}")
        print()

    std_trace = results["standard"][1]
    new_trace = results["emeralds"][1]
    saved_switches = std_trace.context_switches - new_trace.context_switches
    saved_time = std_trace.kernel_time_total - new_trace.kernel_time_total
    print(
        f"EMERALDS scheme saved {saved_switches} context switches and "
        f"{to_us(saved_time):.0f} us of kernel time over 3 s "
        f"({100 * saved_time / max(1, std_trace.kernel_time_total):.1f}% of kernel overhead)."
    )
    kernel, trace = results["emeralds"]
    print()
    print(trace.gantt_ascii(0, ms(30), columns=72))


if __name__ == "__main__":
    main()
