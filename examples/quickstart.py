#!/usr/bin/env python3
"""Quickstart: a tiny EMERALDS application.

Builds a kernel with the CSD-3 scheduler and three periodic threads:

* ``control`` (5 ms, DP1 queue) updates a shared object behind an
  EMERALDS semaphore and publishes its latest sample on a *state
  message* channel -- the lock-free single-writer mechanism EMERALDS
  uses for high-rate sensor-style data (a mailbox would overflow: the
  consumer runs 20x slower and only ever wants the latest value).
* ``supervisor`` (20 ms, DP2 queue) also takes the lock, and sends a
  low-rate report through a mailbox.
* ``logger`` (100 ms, FP queue) drains the report mailbox and reads
  the latest sample.

Run:  python examples/quickstart.py
"""

from repro.kernel.footprint import kernel_footprint
from repro import (
    Acquire,
    Compute,
    CSDScheduler,
    Kernel,
    OverheadModel,
    Program,
    Recv,
    Release,
    Send,
    StateRead,
    StateWrite,
    ms,
    to_us,
    us,
)


def build_kernel() -> Kernel:
    scheduler = CSDScheduler(OverheadModel(), dp_queue_count=2)
    kernel = Kernel(scheduler, sem_scheme="emeralds")

    kernel.create_semaphore("state_lock")
    kernel.create_mailbox("reports", capacity=8)
    kernel.create_channel("latest_sample", slots=4)

    # Fast control loop: lock the shared object, publish the sample on
    # the state channel (no kernel trap).  Lives in DP1 (EDF).
    kernel.create_thread(
        "control",
        Program(
            [
                Acquire("state_lock"),
                Compute(us(300)),
                Release("state_lock"),
                StateWrite("latest_sample", value="rpm"),
                Compute(us(200)),
            ]
        ),
        period=ms(5),
        csd_queue=0,
    )

    # Medium-rate supervisor, DP2: takes the lock, files one report.
    kernel.create_thread(
        "supervisor",
        Program(
            [
                Compute(ms(1)),
                Acquire("state_lock"),
                Compute(us(500)),
                Release("state_lock"),
                Send("reports", size=16, payload="report"),
            ]
        ),
        period=ms(20),
        csd_queue=1,
    )

    # Slow logger on the FP (rate-monotonic) queue: drains the five
    # reports that arrive per 100 ms, reads the latest sample.
    kernel.create_thread(
        "logger",
        Program(
            [Recv("reports") for _ in range(5)]
            + [StateRead("latest_sample"), Compute(ms(2))]
        ),
        period=ms(100),
        csd_queue=2,
    )
    return kernel


def main() -> None:
    kernel = build_kernel()
    trace = kernel.run_until(ms(1000))

    print("=== quickstart: 1 s of virtual time on CSD-3 ===")
    print(trace.summary(kernel.now))
    print()
    print("scheduler queues (DP1, DP2, FP):", kernel.scheduler.queue_lengths())
    stats = kernel.scheduler.stats
    print(
        f"scheduler ops: {stats.blocks} blocks, {stats.unblocks} unblocks, "
        f"{stats.selects} selects; charged {to_us(stats.charged_total_ns):.0f} us"
    )
    sem = kernel.semaphores["state_lock"]
    print(
        f"semaphore: {sem.acquires} acquires "
        f"({sem.contended_acquires} contended), "
        f"{sem.parks} hint-parks saving {sem.saved_switches} context switches"
    )
    channel = kernel.channels["latest_sample"]
    print(
        f"state channel: {channel.writes} writes, {channel.reads} reads, "
        f"{channel.torn_reads} torn reads"
    )
    print()
    print(trace.gantt_ascii(0, ms(40), columns=72))
    violations = trace.deadline_violations(kernel.now)
    print()
    print("deadline violations:", len(violations))
    report = kernel_footprint(kernel)
    print()
    print("memory footprint on the modeled part:")
    print(report.render())
    print(f"fits a 32 KB part: {report.fits(32 * 1024)}")
    assert not violations, "quickstart workload must be schedulable"


if __name__ == "__main__":
    main()
