#!/usr/bin/env python3
"""Cellular-phone voice compression pipeline (Section 1's second domain).

A hand-held phone's DSP-less microcontroller runs:

* ``mic_driver`` -- a user-level driver woken by the ADC interrupt
  every 20 ms (one voice frame), which pushes the raw frame into a
  mailbox;
* ``codec`` -- the voice compressor: receives a raw frame, spends most
  of the CPU compressing it, and sends the compressed frame on;
* ``radio`` -- frames the compressed data for the air interface;
* ``agc`` -- automatic gain control at 5 ms, publishing the current
  signal level on a state-message channel (high-rate, latest-value
  data: a mailbox would be the wrong tool);
* ``ui`` -- a slow display task reading the signal level and serving
  sporadic keypad interrupts.

The pipeline is scheduled by CSD-3 and demonstrates memory-protected
IPC: the codec's buffers live in its process's memory map, and the
kernel validates each mailbox transfer against it.

Run:  python examples/voice_pipeline.py
"""

from repro import (
    Compute,
    CSDScheduler,
    Kernel,
    OverheadModel,
    Program,
    Recv,
    Send,
    StateRead,
    StateWrite,
    Wait,
    ms,
    to_us,
    us,
)
from repro.kernel.devices import AperiodicDevice, PeriodicDevice

ADC_VECTOR = 1
KEYPAD_VECTOR = 2

FRAME_BYTES = 160  # 20 ms of 8 kHz mono, 8-bit
COMPRESSED_BYTES = 33  # GSM full-rate frame


def build_kernel() -> Kernel:
    kernel = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=2))

    # Processes and their buffers: the kernel checks every mailbox
    # transfer against these maps.
    audio = kernel.create_process("audio")
    audio.map_region("raw_frame", FRAME_BYTES)
    audio.map_region("compressed_frame", COMPRESSED_BYTES + 31)
    radio_proc = kernel.create_process("radio")
    radio_proc.map_region("tx_frame", COMPRESSED_BYTES + 31)

    kernel.create_mailbox("raw_frames", capacity=4, max_message_size=FRAME_BYTES)
    kernel.create_mailbox("compressed", capacity=4, max_message_size=64)
    kernel.create_channel("signal_level", slots=4)

    kernel.interrupts.register_event_handler(ADC_VECTOR, "frame_ready")
    PeriodicDevice(kernel, "adc", vector=ADC_VECTOR, period=ms(20))
    kernel.interrupts.register_event_handler(KEYPAD_VECTOR, "keypress")
    AperiodicDevice(
        kernel,
        "keypad",
        vector=KEYPAD_VECTOR,
        mean_interarrival=ms(700),
        min_interarrival=ms(100),
        seed=11,
        horizon=ms(5000),
    )

    # Microphone driver (DP1): woken by the ADC, ships the raw frame.
    kernel.create_thread(
        "mic_driver",
        Program(
            [
                Wait("frame_ready"),
                Compute(us(150)),
                Send("raw_frames", size=FRAME_BYTES, payload="frame",
                     buffer="raw_frame"),
            ]
        ),
        period=ms(20),
        deadline=ms(5),
        process=kernel.processes["audio"],
        csd_queue=0,
    )

    # Codec (DP1): the heavy lifting -- ~8 ms of CPU per 20 ms frame.
    kernel.create_thread(
        "codec",
        Program(
            [
                Recv("raw_frames", buffer="raw_frame"),
                Compute(ms(8)),
                Send("compressed", size=COMPRESSED_BYTES, payload="gsm",
                     buffer="compressed_frame"),
            ]
        ),
        period=ms(20),
        deadline=ms(18),
        process=kernel.processes["audio"],
        csd_queue=0,
    )

    # Radio framing (DP2).
    kernel.create_thread(
        "radio",
        Program(
            [
                Recv("compressed", buffer="tx_frame"),
                Compute(ms(1)),
            ]
        ),
        period=ms(20),
        deadline=ms(20),
        process=radio_proc,
        csd_queue=1,
    )

    # Automatic gain control (DP1: its 5 ms deadline must preempt the
    # codec's 8 ms bursts, so it shares the EDF band with the codec).
    kernel.create_thread(
        "agc",
        Program(
            [
                Compute(us(400)),
                StateWrite("signal_level", value=-47),
            ]
        ),
        period=ms(5),
        csd_queue=0,
    )

    # Display / UI (FP queue): slow consumer of the signal level.
    kernel.create_thread(
        "ui",
        Program(
            [
                StateRead("signal_level", duration=us(200)),
                Compute(ms(2)),
            ]
        ),
        period=ms(250),
        csd_queue=2,
    )

    # Keypad service: aperiodic.
    kernel.create_thread(
        "keypad_task",
        Program([Compute(us(800))]),
        priority=100,
        deadline=ms(50),
        csd_queue=2,
    )
    kernel.interrupts.register(
        KEYPAD_VECTOR, lambda kern, vec: kern.activate("keypad_task")
    )
    return kernel


def main() -> None:
    kernel = build_kernel()
    trace = kernel.run_until(ms(5000))

    print("=== voice pipeline: 5 s of virtual time, CSD-3 ===")
    print(trace.summary(kernel.now))
    print()

    frames = len(trace.jobs_of("codec"))
    codec_responses = [
        j.response_time for j in trace.jobs_of("codec") if j.response_time
    ]
    print(f"voice frames processed: {frames}")
    print(
        f"codec response time: max {to_us(max(codec_responses)) / 1000:.2f} ms, "
        f"avg {to_us(sum(codec_responses) / len(codec_responses)) / 1000:.2f} ms "
        f"(deadline 18 ms)"
    )
    print(
        "signal level channel:",
        kernel.channels["signal_level"].writes,
        "writes,",
        kernel.channels["signal_level"].reads,
        "reads,",
        kernel.channels["signal_level"].torn_reads,
        "torn reads",
    )
    keypad_jobs = trace.jobs_of("keypad_task")
    print(f"keypad presses served: {len(keypad_jobs)}")
    violations = trace.deadline_violations(kernel.now)
    print(f"deadline violations: {len(violations)}")
    print()
    print(trace.gantt_ascii(0, ms(60), columns=72))
    assert not violations, "pipeline must be schedulable"


if __name__ == "__main__":
    main()
