#!/usr/bin/env python3
"""Distributed automotive control: three EMERALDS nodes on a fieldbus.

The paper's distributed targets are "5-10 nodes interconnected by a
low-speed (1-2 Mbit/s) fieldbus network (such as automotive and
avionics control systems)" (Section 2).  This example runs three
kernels on a 1 Mbit/s CAN-style bus:

* **sensor node** -- samples wheel speed every 10 ms and broadcasts it
  (id 0x10, the highest bus priority) plus a lower-priority status
  frame (id 0x40);
* **controller node** -- its user-level network driver (woken by the
  rx interrupt) feeds speed frames into a state-message channel; a
  20 ms control task reads the latest speed, computes a brake command
  behind a semaphore, and broadcasts it (id 0x20);
* **actuator node** -- receives brake commands and drives the valve
  task.

Each node is an independent kernel (its own CPU, scheduler, and
overhead accounting); the cluster synchronizes them through the bus's
one-frame lookahead.  The run reports per-node deadline compliance,
bus utilization, and end-to-end sensor-to-actuator latency.

Run:  python examples/distributed_control.py
"""

from repro import (
    Acquire,
    Call,
    Compute,
    CSDScheduler,
    Kernel,
    OverheadModel,
    Program,
    Release,
    StateRead,
    StateWrite,
    Wait,
    ms,
    to_ms,
    us,
)
from repro.net import Cluster, Fieldbus, Frame, net_send

SPEED_ID = 0x10
BRAKE_ID = 0x20
STATUS_ID = 0x40


def build_sensor_node(cluster: Cluster) -> Kernel:
    kernel = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=1))
    iface = cluster.add_node("sensor", kernel)
    kernel.create_thread(
        "sampler",
        Program(
            [
                Compute(us(200)),  # read the wheel sensor
                net_send(iface, can_id=SPEED_ID, size=4, payload=("speed", 88)),
            ]
        ),
        period=ms(10),
        deadline=ms(5),
        csd_queue=0,
    )
    kernel.create_thread(
        "status",
        Program([Compute(us(150)), net_send(iface, can_id=STATUS_ID, size=8,
                                            payload="status")]),
        period=ms(100),
        csd_queue=1,
    )
    return kernel


def build_controller_node(cluster: Cluster, latencies: list) -> Kernel:
    kernel = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=1))
    iface = cluster.add_node("controller", kernel, accept={SPEED_ID})
    kernel.create_channel("speed", slots=4)
    kernel.create_semaphore("gains")

    def drain(kern, thread):
        while True:
            frame = iface.receive()
            if frame is None:
                break
            kern.channels["speed"].write(frame.payload, writer_name=thread.name)

    # User-level network driver (Figure 1): DP queue, tight deadline.
    kernel.create_thread(
        "net_driver",
        Program([Wait(iface.rx_event_name), Call(drain), Compute(us(50))]),
        period=ms(10),
        deadline=ms(3),
        csd_queue=0,
    )

    # The control law: read the latest speed, compute, send the command.
    def stamp_send(kern, thread):
        iface.transmit(Frame(can_id=BRAKE_ID, size=4, payload=("brake", kern.now)))

    kernel.create_thread(
        "control",
        Program(
            [
                StateRead("speed"),
                Acquire("gains"),
                Compute(ms(1)),
                Release("gains"),
                Call(stamp_send),
            ]
        ),
        period=ms(20),
        deadline=ms(10),
        csd_queue=0,
    )

    # A tuning task sharing the gain table.
    kernel.create_thread(
        "tuning",
        Program([Acquire("gains"), Compute(ms(2)), Release("gains")]),
        period=ms(200),
        csd_queue=1,
    )
    return kernel


def build_actuator_node(cluster: Cluster, latencies: list) -> Kernel:
    kernel = Kernel(CSDScheduler(OverheadModel(), dp_queue_count=1))
    iface = cluster.add_node("actuator", kernel, accept={BRAKE_ID})

    def actuate(kern, thread):
        while True:
            frame = iface.receive()
            if frame is None:
                break
            _, sent_at = frame.payload
            latencies.append(kern.now - sent_at)

    kernel.create_thread(
        "valve_driver",
        Program([Wait(iface.rx_event_name), Call(actuate), Compute(us(300))]),
        period=ms(20),
        deadline=ms(5),
        csd_queue=0,
    )
    return kernel


def main() -> None:
    cluster = Cluster(Fieldbus(bit_rate_bps=1_000_000))
    latencies: list = []
    sensor = build_sensor_node(cluster)
    controller = build_controller_node(cluster, latencies)
    actuator = build_actuator_node(cluster, latencies)

    horizon = ms(2000)
    cluster.run_until(horizon)

    print("=== distributed control: 3 nodes, 1 Mbit/s fieldbus, 2 s ===\n")
    for name, kernel in cluster.nodes.items():
        violations = kernel.trace.deadline_violations(kernel.now)
        print(
            f"{name:>10}: {len(kernel.trace.jobs)} jobs, "
            f"{len(violations)} deadline violations, "
            f"kernel time {kernel.trace.kernel_time_total / 1e6:.2f} ms"
        )
    bus = cluster.bus
    print(
        f"\nbus: {bus.frames_delivered} frames, "
        f"{100 * bus.utilization(horizon):.1f}% utilization, "
        f"avg arbitration wait "
        f"{bus.total_arbitration_wait_ns / max(1, bus.frames_delivered) / 1000:.0f} us"
    )
    iface = cluster.interfaces["controller"]
    print(
        f"controller rx: {iface.frames_received} speed frames "
        f"({iface.frames_filtered} filtered out)"
    )
    if latencies:
        print(
            f"command->valve latency: min {to_ms(min(latencies)):.3f} ms, "
            f"max {to_ms(max(latencies)):.3f} ms "
            f"(wire time of a 4-byte frame: 0.079 ms)"
        )
    total = cluster.total_deadline_violations()
    print(f"\ntotal deadline violations across the cluster: {total}")
    assert total == 0, "the distributed workload must be schedulable"


if __name__ == "__main__":
    main()
