#!/usr/bin/env python3
"""Reproduce the Table 2 / Figure 2 scheduler comparison.

Runs the paper's 10-task workload (U = 0.88) under RM, EDF, and CSD-2
in the live kernel and shows:

* the Figure 2 trace -- tau1..tau4 fill [0, 4 ms), their second
  releases crowd out tau5, and tau5 misses its deadline under RM;
* that EDF and CSD-2 (tau1..tau5 on the DP queue) schedule the same
  workload without a single miss;
* the breakdown utilization of each policy on this workload, with the
  paper's MC68040 overhead model switched on.

Run:  python examples/scheduler_comparison.py
"""

from repro import OverheadModel, ZERO_OVERHEAD, breakdown_utilization, ms, table2_workload
from repro.analysis import format_table
from repro.sim.kernelsim import simulate_workload


def show_schedules() -> None:
    workload = table2_workload()
    print("=== Table 2 workload ===")
    print(
        format_table(
            ["task", "period (ms)", "wcet (ms)"],
            [[t.name, t.period / 1e6, t.wcet / 1e6] for t in workload],
        )
    )
    print(f"\ntotal utilization U = {workload.utilization:.3f}\n")

    configs = [
        ("rm", None, "RM (Figure 2: tau5 misses its deadline)"),
        ("edf", None, "EDF (feasible, U <= 1)"),
        ("csd-2", (5,), "CSD-2 with tau1..tau5 on the DP queue (Section 5.3)"),
    ]
    for policy, splits, caption in configs:
        kernel, trace = simulate_workload(
            workload, policy, duration=ms(40), model=ZERO_OVERHEAD, splits=splits
        )
        violations = trace.deadline_violations(kernel.now)
        print(f"--- {caption} ---")
        print(
            trace.gantt_ascii(
                0, ms(10), columns=60, threads=[f"tau{i}" for i in range(1, 6)]
            )
        )
        missed = sorted({j.thread for j in violations})
        print(f"deadline misses in 40 ms: {missed or 'none'}\n")


def show_breakdowns() -> None:
    workload = table2_workload()
    model = OverheadModel()
    rows = []
    for policy in ("rm", "rm-heap", "edf", "csd-2", "csd-3"):
        ideal = breakdown_utilization(workload, policy, ZERO_OVERHEAD)
        real = breakdown_utilization(workload, policy, model)
        rows.append(
            [
                policy,
                f"{100 * ideal.utilization:.1f}%",
                f"{100 * real.utilization:.1f}%",
                str(real.splits) if real.splits else "-",
            ]
        )
    print(
        format_table(
            ["policy", "ideal breakdown", "with overheads", "CSD splits"],
            rows,
            title="Breakdown utilization of the Table 2 workload",
        )
    )


def main() -> None:
    show_schedules()
    show_breakdowns()


if __name__ == "__main__":
    main()
